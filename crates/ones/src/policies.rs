//! Batch-size limit policies (§3.3.2).
//!
//! ONES never lets the evolutionary search choose arbitrary batch sizes:
//! every job carries a dynamic limit `R_j` that the search must respect
//! (`B_j ≤ R_j`), and `R_j` evolves by four rules:
//!
//! * **Start** — on arrival a job is limited to what fits on a *single*
//!   GPU until it completes a warm-up epoch.
//! * **Scale-up** — after each completed epoch a running job may double:
//!   `R' = 2R`. Doubling (one octave per event) is exactly the gradual
//!   trajectory Figure 14 shows to be convergence-safe.
//! * **Scale-down** — long-running jobs are penalised to prevent the
//!   convoy effect: `R' = ⌈2R / ⌈σ·T_processed + 1⌉⌉` with σ set to the
//!   average job arrival rate λ, so jobs older than the mean inter-arrival
//!   gap 1/λ stop growing and begin shrinking.
//! * **Resume** — a waiting job may ask for at most the limit it had when
//!   preempted; each time a schedule update leaves it waiting, the limit is
//!   halved, shrinking its footprint until it fits (starvation guard).

use ones_workload::{JobId, JobSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Policy tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Convoy-effect factor σ (the paper suggests σ = λ, the mean job
    /// arrival rate in jobs/second).
    pub sigma: f64,
    /// Epochs a fresh job must complete before its limit may grow past a
    /// single GPU ("a few warm-up steps").
    pub warmup_epochs: u32,
    /// Hard floor for any limit.
    pub min_batch: u32,
    /// Cap on growth: R never exceeds `max_batch_factor x submitted batch`
    /// (four doublings by default — the range the large-batch literature
    /// the paper cites [Goyal, Smith, You] validates) nor half the
    /// dataset.
    pub max_batch_factor: u32,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            sigma: 1.0 / 30.0,
            warmup_epochs: 1,
            min_batch: 8,
            max_batch_factor: 16,
        }
    }
}

/// The per-job limit table `R_j`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchLimits {
    config: PolicyConfig,
    limits: BTreeMap<JobId, u32>,
    /// Per-job floor: the submitted batch (capped to one GPU). Elasticity
    /// explores *upward* from the user's configuration; scale-down and
    /// rejection never push a job below what its owner asked for.
    floors: BTreeMap<JobId, u32>,
    /// Per-job growth ceiling (see [`PolicyConfig::max_batch_factor`]).
    caps: BTreeMap<JobId, u32>,
}

impl BatchLimits {
    /// Creates an empty table.
    #[must_use]
    pub fn new(config: PolicyConfig) -> Self {
        BatchLimits {
            config,
            limits: BTreeMap::new(),
            floors: BTreeMap::new(),
            caps: BTreeMap::new(),
        }
    }

    fn floor(&self, job: JobId) -> u32 {
        self.floors
            .get(&job)
            .copied()
            .unwrap_or(self.config.min_batch)
    }

    /// Read-only view of the table (what the evolutionary search consumes).
    #[must_use]
    pub fn table(&self) -> &BTreeMap<JobId, u32> {
        &self.limits
    }

    /// Current limit of a job (0 if unknown).
    #[must_use]
    pub fn get(&self, job: JobId) -> u32 {
        self.limits.get(&job).copied().unwrap_or(0)
    }

    /// **Start** policy: register an arriving job, capped to a single GPU.
    pub fn on_arrival(&mut self, spec: &JobSpec) {
        let single_gpu = spec.profile().max_local_batch;
        let r = spec.submit_batch.min(single_gpu).max(self.config.min_batch);
        self.limits.insert(spec.id, r);
        self.floors.insert(spec.id, r);
        let cap = (spec.submit_batch * self.config.max_batch_factor)
            .min(spec.max_safe_batch)
            .min((spec.dataset_size / 2).max(1) as u32)
            .max(r);
        self.caps.insert(spec.id, cap);
    }

    /// **Scale-up / scale-down** policy, applied after each completed
    /// epoch of a running job: `R' = ⌈2R / ⌈σ·T_processed + 1⌉⌉`, which
    /// doubles young jobs and throttles then shrinks old ones. During the
    /// warm-up window the limit stays single-GPU.
    ///
    /// `exec_time` is the job's processed (running) time in seconds;
    /// `epochs_done` its completed epochs; `memory_cap` the hard maximum
    /// the cluster could ever serve (max local batch × cluster GPUs).
    pub fn on_epoch_end(
        &mut self,
        job: JobId,
        epochs_done: u32,
        exec_time: f64,
        memory_cap: u32,
        contended: bool,
    ) {
        let Some(&r) = self.limits.get(&job) else {
            return;
        };
        if epochs_done < self.config.warmup_epochs {
            return; // still warming up on its single GPU
        }
        // The paper writes R' = ⌈2R/⌈σT+1⌉⌉; taken literally, ⌈σT+1⌉ = 2
        // for any T > 0 and young jobs could never double. The stated
        // intent is "to penalize jobs that are longer than the average
        // arrival time interval 1/λ", which requires ⌊σT⌋+1: doubling
        // while T < 1/λ, frozen in [1/λ, 2/λ), shrinking beyond.
        //
        // The convoy effect the penalty prevents — long jobs hogging GPUs
        // while others queue — only exists under contention, so the
        // penalty is gated on waiting jobs being present; an old job alone
        // in an idle cluster may keep its resources.
        let denom = if contended {
            (self.config.sigma * exec_time).floor() + 1.0
        } else {
            1.0
        };
        let next = ((2.0 * f64::from(r)) / denom).ceil() as u32;
        let floor = self.floor(job);
        let cap = self
            .caps
            .get(&job)
            .copied()
            .unwrap_or(memory_cap)
            .min(memory_cap)
            .max(floor);
        self.limits.insert(job, next.clamp(floor, cap));
    }

    /// **Resume** policy: a waiting job was left out of the deployed
    /// schedule again; halve its limit so it eventually fits.
    pub fn on_rejected(&mut self, job: JobId) {
        let floor = self.floor(job);
        if let Some(r) = self.limits.get_mut(&job) {
            *r = (*r / 2).max(floor);
        }
    }

    /// A job completed: drop its limit entry.
    pub fn on_completed(&mut self, job: JobId) {
        self.limits.remove(&job);
        self.floors.remove(&job);
        self.caps.remove(&job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ones_dlperf::{ConvergenceModel, DatasetKind, ModelKind};

    fn spec(id: u64, batch: u32) -> JobSpec {
        JobSpec {
            id: JobId(id),
            name: format!("j{id}"),
            model: ModelKind::ResNet50,
            dataset: DatasetKind::ImageNet,
            dataset_size: 10_000,
            submit_batch: batch,
            max_safe_batch: batch * 64,
            requested_gpus: 2,
            arrival_secs: 0.0,
            kill_after_secs: None,
            convergence: ConvergenceModel {
                reference_batch: batch,
                ..ConvergenceModel::example()
            },
        }
    }

    fn limits() -> BatchLimits {
        BatchLimits::new(PolicyConfig {
            sigma: 0.01,
            warmup_epochs: 1,
            min_batch: 8,
            max_batch_factor: 64,
        })
    }

    #[test]
    fn start_caps_to_single_gpu() {
        let mut l = limits();
        // ResNet50/ImageNet max local batch is 256; submit 512.
        l.on_arrival(&spec(0, 512));
        assert_eq!(l.get(JobId(0)), 256);
        // A small submission keeps its own batch.
        l.on_arrival(&spec(1, 128));
        assert_eq!(l.get(JobId(1)), 128);
    }

    #[test]
    fn scale_up_doubles_young_jobs() {
        let mut l = limits();
        l.on_arrival(&spec(0, 256));
        // Young job (tiny exec time): denominator 1, pure doubling.
        l.on_epoch_end(JobId(0), 1, 1.0, 16_384, true);
        assert_eq!(l.get(JobId(0)), 512);
        l.on_epoch_end(JobId(0), 2, 2.0, 16_384, true);
        assert_eq!(l.get(JobId(0)), 1024);
    }

    #[test]
    fn warmup_freezes_the_limit() {
        let mut l = BatchLimits::new(PolicyConfig {
            warmup_epochs: 3,
            sigma: 0.01,
            min_batch: 8,
            max_batch_factor: 64,
        });
        l.on_arrival(&spec(0, 256));
        l.on_epoch_end(JobId(0), 1, 1.0, 16_384, true);
        l.on_epoch_end(JobId(0), 2, 2.0, 16_384, true);
        assert_eq!(l.get(JobId(0)), 256, "no growth during warm-up");
        l.on_epoch_end(JobId(0), 3, 3.0, 16_384, true);
        assert_eq!(l.get(JobId(0)), 512);
    }

    #[test]
    fn convoy_penalty_shrinks_old_jobs() {
        let mut l = limits(); // sigma = 0.01 -> 1/sigma = 100 s
        l.on_arrival(&spec(0, 256));
        // Grow the limit first so shrinkage is observable above the floor.
        l.on_epoch_end(JobId(0), 1, 1.0, 16_384, true);
        l.on_epoch_end(JobId(0), 2, 2.0, 16_384, true);
        assert_eq!(l.get(JobId(0)), 1024);
        // Old job: T_processed = 500 s, denominator = floor(5)+1 = 6.
        l.on_epoch_end(JobId(0), 10, 500.0, 16_384, true);
        assert_eq!(l.get(JobId(0)), 2048u32.div_ceil(6)); // = 342
                                                          // A very old job shrinks back to its own submitted batch, never
                                                          // below it.
        for _ in 0..20 {
            l.on_epoch_end(JobId(0), 10, 10_000.0, 16_384, true);
        }
        assert_eq!(l.get(JobId(0)), 256);
    }

    #[test]
    fn equilibrium_at_double_arrival_interval() {
        // At T = 1/σ the denominator is ceil(2) = 2, so R' = R: jobs stop
        // growing exactly at the average arrival interval, as §3.3.2
        // intends.
        let mut l = limits();
        l.on_arrival(&spec(0, 256));
        l.on_epoch_end(JobId(0), 5, 100.0, 16_384, true);
        assert_eq!(l.get(JobId(0)), 256);
    }

    #[test]
    fn memory_cap_bounds_growth() {
        let mut l = limits();
        l.on_arrival(&spec(0, 256));
        for e in 1..20 {
            l.on_epoch_end(JobId(0), e, 1.0, 2048, true);
        }
        assert_eq!(l.get(JobId(0)), 2048);
    }

    #[test]
    fn rejection_halves_down_to_the_submitted_batch() {
        let mut l = limits();
        l.on_arrival(&spec(0, 256));
        // Grow to 1024, then reject repeatedly.
        l.on_epoch_end(JobId(0), 1, 1.0, 16_384, true);
        l.on_epoch_end(JobId(0), 2, 2.0, 16_384, true);
        l.on_rejected(JobId(0));
        assert_eq!(l.get(JobId(0)), 512);
        for _ in 0..10 {
            l.on_rejected(JobId(0));
        }
        assert_eq!(l.get(JobId(0)), 256, "never below the submitted batch");
    }

    #[test]
    fn completion_removes_entry() {
        let mut l = limits();
        l.on_arrival(&spec(0, 256));
        l.on_completed(JobId(0));
        assert_eq!(l.get(JobId(0)), 0);
        assert!(l.table().is_empty());
        // Updates for unknown jobs are no-ops.
        l.on_epoch_end(JobId(0), 1, 1.0, 1024, true);
        l.on_rejected(JobId(0));
        assert!(l.table().is_empty());
    }
}
