//! # ones-sync — the workspace's single door to synchronization
//!
//! Every concurrent crate in this workspace imports its primitives from
//! here instead of `std::sync` (enforced by `ones-lint`'s `std-sync`
//! rule). In a normal build the facade is a zero-cost re-export of
//! `std::sync`. Under `RUSTFLAGS="--cfg ones_loom"` the lock and atomic
//! types switch to the vendored loom shim (`shims/loom`), whose types
//! behave identically outside a model but become *visible operations* of
//! a bounded-exhaustive interleaving exploration inside
//! [`loom::model`](mod@model) — that is what lets the loom tests in
//! `crates/{evo,obs,oned}/tests/loom_*.rs` model-check the cache
//! racing-compute protocol, the metrics registry and the daemon
//! snapshot/event-log publishing without changing a line of production
//! code.
//!
//! What switches and what does not:
//!
//! | item | normal build | `--cfg ones_loom` |
//! |---|---|---|
//! | [`Mutex`], [`RwLock`] + guards | `std::sync` | loom shim (model-aware) |
//! | [`atomic`] types | `std::sync::atomic` | loom shim (model-aware, SC) |
//! | [`Arc`], [`Weak`] | `std::sync` | `std::sync` |
//! | [`LazyLock`], [`OnceLock`] | `std::sync` | `std::sync` (not modeled) |
//! | [`mpsc`], [`Condvar`], [`Barrier`] | `std::sync` | `std::sync` (not modeled) |
//! | [`model`]/[`thread`] helpers | absent | loom shim |
//!
//! `LazyLock`/`OnceLock` initialization and `mpsc` channels are not
//! interleaving-explored: the loom tests model the protocols this repo
//! owns (lock/atomic state machines), and one-time init plus channel
//! handoff are `std` guarantees, not ours. ThreadSanitizer (opt-in CI
//! stage) covers them dynamically.

#![cfg_attr(ones_loom, allow(unused_imports))]

// ---------------------------------------------------------------------
// Lock types: std in production, loom shim under the model cfg.
// ---------------------------------------------------------------------

#[cfg(not(ones_loom))]
pub use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(ones_loom)]
pub use loom::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomic types and memory orderings.
///
/// Under `--cfg ones_loom` these are the loom shim's model-aware atomics
/// (explored under sequential consistency); otherwise `std::sync::atomic`
/// re-exports.
pub mod atomic {
    #[cfg(not(ones_loom))]
    pub use std::sync::atomic::{
        AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };

    #[cfg(ones_loom)]
    pub use loom::sync::atomic::{
        AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

// ---------------------------------------------------------------------
// Always-std items (see the crate docs table for why).
// ---------------------------------------------------------------------

pub use std::sync::{
    mpsc, Arc, Barrier, Condvar, LazyLock, LockResult, OnceLock, PoisonError, Weak,
};

/// Model-checking entry points, present only under `--cfg ones_loom`.
///
/// ```ignore
/// ones_sync::model::model(|| {
///     // build state, spawn ones_sync::model::thread::spawn(..), assert
/// });
/// ```
#[cfg(ones_loom)]
pub mod model {
    pub use loom::thread;
    pub use loom::{model, model_with, Options};
}

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicU64, Ordering};
    use super::{Arc, LazyLock, Mutex, RwLock};

    static HITS: AtomicU64 = AtomicU64::new(0);
    static TABLE: LazyLock<Mutex<Vec<u32>>> = LazyLock::new(|| Mutex::new(Vec::new()));

    #[test]
    fn facade_types_work_in_statics_and_threads() {
        // relaxed: test-only counter, no cross-thread ordering needed.
        HITS.fetch_add(1, Ordering::Relaxed);
        // relaxed: same counter as above.
        assert!(HITS.load(Ordering::Relaxed) >= 1);
        TABLE.lock().expect("table").push(1);
        assert!(!TABLE.lock().expect("table").is_empty());

        let shared = Arc::new(RwLock::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    *shared.write().expect("rwlock") += 1;
                });
            }
        });
        assert_eq!(*shared.read().expect("rwlock"), 4);
    }
}
