//! End-to-end check of `ones-sim --trace-out`: the emitted file must be
//! valid Chrome-trace-format JSON carrying spans from at least four crates
//! (simulator, ones, evo, predictor), plus a metrics JSONL snapshot.

use serde_json::Value;
use std::collections::BTreeSet;
use std::process::Command;

#[test]
fn trace_out_emits_spans_from_four_crates() {
    let dir = std::env::temp_dir().join("ones-sim-obs-cli");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let metrics_path = dir.join("metrics.jsonl");

    let output = Command::new(env!("CARGO_BIN_EXE_ones-sim"))
        .args([
            "--scheduler",
            "ones",
            "--jobs",
            "10",
            "--gpus",
            "16",
            "--json",
            "--trace-out",
            trace_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ])
        .output()
        .expect("ones-sim runs");
    assert!(
        output.status.success(),
        "ones-sim failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // --trace-out implies --obs full, reported in the JSON output.
    let report: Value =
        serde_json::from_str(&String::from_utf8_lossy(&output.stdout)).expect("JSON report");
    assert_eq!(
        report.get("obs_level").and_then(Value::as_str),
        Some("full")
    );
    let perf = report.get("scheduler_perf").expect("scheduler_perf");
    assert!(perf.get("cache_hit_rate").and_then(Value::as_f64).is_some());
    assert!(perf.get("derive_ms").and_then(Value::as_f64).is_some());

    let trace: Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).expect("valid JSON");
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(events.len() > 10, "only {} trace events", events.len());

    let mut span_cats: BTreeSet<String> = BTreeSet::new();
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph field");
        match ph {
            "X" => {
                // Duration events carry the full field set.
                assert!(e.get("name").and_then(Value::as_str).is_some());
                assert!(e.get("ts").and_then(Value::as_f64).is_some());
                assert!(e.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
                let cat = e.get("cat").and_then(Value::as_str).expect("cat field");
                span_cats.insert(cat.to_string());
            }
            "i" => {
                assert!(e.get("ts").and_then(Value::as_f64).is_some());
            }
            "M" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for cat in ["simulator", "ones", "evo", "predictor"] {
        assert!(
            span_cats.contains(cat),
            "no spans from `{cat}`: {span_cats:?}"
        );
    }

    // The metrics snapshot covers all five instrumented crates.
    let metrics = std::fs::read_to_string(&metrics_path).unwrap();
    let keys: Vec<String> = metrics
        .lines()
        .map(|l| {
            let v: Value = serde_json::from_str(l).expect("valid JSONL line");
            v.get("key").and_then(Value::as_str).unwrap().to_string()
        })
        .collect();
    for prefix in [
        "simulator.engine.",
        "ones.scheduler.",
        "evo.search.",
        "predictor.progress.",
        "cluster.allreduce.",
    ] {
        assert!(
            keys.iter().any(|k| k.starts_with(prefix)),
            "no `{prefix}*` metrics in snapshot: {keys:?}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn obs_off_still_runs_and_reports() {
    let output = Command::new(env!("CARGO_BIN_EXE_ones-sim"))
        .args([
            "--scheduler",
            "fifo",
            "--jobs",
            "6",
            "--gpus",
            "16",
            "--obs",
            "off",
            "--json",
        ])
        .output()
        .expect("ones-sim runs");
    assert!(output.status.success());
    let report: Value =
        serde_json::from_str(&String::from_utf8_lossy(&output.stdout)).expect("JSON report");
    assert_eq!(report.get("obs_level").and_then(Value::as_str), Some("off"));
    assert!(report.get("makespan_secs").and_then(Value::as_f64).unwrap() > 0.0);
}
