//! Robustness properties for dirty traces: every scheduler must survive
//! abnormal terminations and Philly-style replayed workloads without
//! panicking, and the completed/killed/unfinished accounting must always
//! add up to the trace length — no job silently dropped, none counted
//! twice.

use ones_simulator::{run_experiment, ExperimentConfig, SchedulerKind, TraceSource};
use ones_workload::{ReplayConfig, TraceConfig};
use proptest::prelude::*;

/// Every scheduler the harness can build, including ablation variants.
const ALL: [SchedulerKind; 12] = [
    SchedulerKind::Ones,
    SchedulerKind::Drl,
    SchedulerKind::Tiresias,
    SchedulerKind::Optimus,
    SchedulerKind::Fifo,
    SchedulerKind::SrtfOracle,
    SchedulerKind::Gandiva,
    SchedulerKind::Slaq,
    SchedulerKind::OnesGreedy,
    SchedulerKind::OnesNoPredictor,
    SchedulerKind::OnesNoReorder,
    SchedulerKind::OnesCheckpoint,
];

fn check_accounting(config: ExperimentConfig, num_jobs: usize, label: &str) {
    let r = run_experiment(config);
    assert_eq!(
        r.completed_jobs + r.killed_jobs + r.incomplete_jobs,
        num_jobs,
        "{label}: outcome counts must partition the trace"
    );
    assert_eq!(
        r.metrics.jct.len(),
        r.completed_jobs,
        "{label}: metrics must cover exactly the completed jobs"
    );
    assert!(
        (0.0..=1.0).contains(&r.goodput),
        "{label}: goodput {} out of range",
        r.goodput
    );
    assert!(r.makespan >= 0.0, "{label}: negative makespan");
}

#[test]
fn every_scheduler_survives_dirty_table2_traces() {
    for kill_fraction in [0.1, 0.3] {
        for kind in ALL {
            let config = ExperimentConfig {
                gpus: 16,
                source: TraceSource::Table2(TraceConfig {
                    num_jobs: 6,
                    arrival_rate: 1.0 / 15.0,
                    seed: 5,
                    kill_fraction,
                }),
                scheduler: kind,
                sched_seed: 2,
                drl_pretrain_episodes: 0,
            };
            check_accounting(
                config,
                6,
                &format!("{} @ kill {kill_fraction}", kind.name()),
            );
        }
    }
}

#[test]
fn every_scheduler_survives_a_philly_replay_trace() {
    for kind in ALL {
        let config = ExperimentConfig {
            gpus: 16,
            source: TraceSource::Replay(ReplayConfig {
                num_jobs: 8,
                base_rate: 1.0 / 10.0,
                seed: 13,
                ..ReplayConfig::default()
            }),
            scheduler: kind,
            sched_seed: 2,
            drl_pretrain_episodes: 0,
        };
        check_accounting(config, 8, &format!("{} @ philly", kind.name()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Accounting partitions the trace for arbitrary seeds and kill
    /// fractions, on both trace generators, under a cheap scheduler and
    /// the full ONES search.
    #[test]
    fn outcome_accounting_partitions_any_trace(
        seed in 0u64..500,
        kill_bucket in 0usize..3,
        use_replay in any::<bool>(),
        ones in any::<bool>(),
    ) {
        let kill_fraction = [0.0, 0.1, 0.3][kill_bucket];
        let source = if use_replay {
            TraceSource::Replay(ReplayConfig {
                num_jobs: 5,
                base_rate: 1.0 / 10.0,
                seed,
                kill_fraction,
                ..ReplayConfig::default()
            })
        } else {
            TraceSource::Table2(TraceConfig {
                num_jobs: 5,
                arrival_rate: 1.0 / 10.0,
                seed,
                kill_fraction,
            })
        };
        let config = ExperimentConfig {
            gpus: 16,
            source,
            scheduler: if ones { SchedulerKind::Ones } else { SchedulerKind::Tiresias },
            sched_seed: seed ^ 1,
            drl_pretrain_episodes: 0,
        };
        check_accounting(config, 5, "proptest");
    }
}
