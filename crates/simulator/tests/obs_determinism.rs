//! Observability must never change scheduling decisions: a run with the
//! recorder fully on must produce a `SimResult` identical to one with it
//! off. This file is its own test binary (own process), so flipping the
//! process-global level here cannot disturb other tests.

use ones_cluster::ClusterSpec;
use ones_dlperf::PerfModel;
use ones_simcore::DetRng;
use ones_simulator::experiment::SchedulerKind;
use ones_simulator::{SimConfig, SimResult, Simulation};
use ones_workload::{Trace, TraceConfig};

fn run(kind: SchedulerKind) -> SimResult {
    let trace = Trace::generate(TraceConfig {
        num_jobs: 12,
        arrival_rate: 1.0 / 12.0,
        seed: 11,
        kill_fraction: 0.1,
    });
    let spec = ClusterSpec::longhorn_subset(16);
    let scheduler = kind.build(&spec, &trace, &DetRng::seed(1));
    Simulation::new(
        PerfModel::new(spec),
        &trace,
        scheduler,
        SimConfig {
            record_trace: true,
            ..SimConfig::default()
        },
    )
    .run()
}

fn assert_identical(off: &SimResult, full: &SimResult, kind: SchedulerKind) {
    assert_eq!(off.makespan, full.makespan, "{kind:?}: makespan differs");
    assert_eq!(off.all_completed, full.all_completed, "{kind:?}");
    assert_eq!(off.deployments, full.deployments, "{kind:?}: deployments");
    assert_eq!(off.transitions, full.transitions, "{kind:?}: transitions");
    assert_eq!(off.total_overhead, full.total_overhead, "{kind:?}");
    assert_eq!(off.jobs.len(), full.jobs.len(), "{kind:?}");
    for (id, a) in &off.jobs {
        let b = &full.jobs[id];
        assert_eq!(a.jct(), b.jct(), "{kind:?}: JCT of {id:?} differs");
        assert_eq!(a.exec_time, b.exec_time, "{kind:?}: exec of {id:?}");
        assert_eq!(a.killed, b.killed, "{kind:?}: kill status of {id:?}");
    }
    assert_eq!(
        off.trace_log.events().len(),
        full.trace_log.events().len(),
        "{kind:?}: trace length differs"
    );
}

#[test]
fn obs_full_does_not_change_sim_results() {
    for kind in [
        SchedulerKind::Ones,
        SchedulerKind::Fifo,
        SchedulerKind::Tiresias,
    ] {
        ones_obs::set_level(ones_obs::ObsLevel::Off);
        ones_obs::reset();
        let off = run(kind);

        ones_obs::set_level(ones_obs::ObsLevel::Full);
        ones_obs::reset();
        let full = run(kind);

        // The recorder actually captured the second run.
        assert!(
            !ones_obs::spans_snapshot().is_empty(),
            "{kind:?}: full-level run recorded no spans"
        );

        assert_identical(&off, &full, kind);
        ones_obs::set_level(ones_obs::ObsLevel::Counters);
    }
}
