//! Streaming observability over real simulator runs. Own test binary: it
//! flips the process-global obs level and attaches recorder sinks, which
//! must not disturb other tests' processes.
//!
//! Covers two acceptance criteria at the integration level:
//! - the chunked trace writer is byte-identical to the in-memory
//!   `chrome_trace_json` exporter on the same seeded span stream, and
//! - a trace covering a Tiresias run and an ONES run carries
//!   `scheduling_round` spans from both under the shared taxonomy
//!   (same span name, `event`/`vt` args; baselines add `scheduler`).

use ones_cluster::ClusterSpec;
use ones_dlperf::PerfModel;
use ones_simcore::DetRng;
use ones_simulator::experiment::SchedulerKind;
use ones_simulator::{SimConfig, Simulation};
use ones_workload::{Trace, TraceConfig};
use serde_json::Value;
use std::collections::BTreeSet;

fn run(kind: SchedulerKind) {
    let trace = Trace::generate(TraceConfig {
        num_jobs: 10,
        arrival_rate: 1.0 / 12.0,
        seed: 11,
        kill_fraction: 0.1,
    });
    let spec = ClusterSpec::longhorn_subset(16);
    let scheduler = kind.build(&spec, &trace, &DetRng::seed(1));
    let _ = Simulation::new(
        PerfModel::new(spec),
        &trace,
        scheduler,
        SimConfig::default(),
    )
    .run();
}

#[test]
fn chunked_stream_of_real_runs_matches_in_memory_and_spans_both_schedulers() {
    ones_obs::set_level(ones_obs::ObsLevel::Full);
    ones_obs::clear_spans();
    run(SchedulerKind::Tiresias);
    run(SchedulerKind::Ones);

    let events = ones_obs::spans_snapshot();
    assert!(
        events.len() > 100,
        "two full-level runs produced only {} spans",
        events.len()
    );
    let in_memory = ones_obs::chrome_trace_json();

    // Replay the captured stream through a small-chunk sink: the final
    // file must be byte-identical to the in-memory exporter's output.
    let dir = std::env::temp_dir().join(format!("ones-sim-streaming-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    ones_obs::clear_spans();
    ones_obs::attach_trace_sink(&path, 64).unwrap();
    for event in events {
        ones_obs::record_event(event);
    }
    ones_obs::finalize_trace_sink().unwrap();
    let streamed = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        streamed, in_memory,
        "chunked trace file differs from the in-memory writer"
    );

    // Shared taxonomy: every scheduler's round is the same span name with
    // `event` and `vt` args; the category separates ones from baselines,
    // and baselines name the concrete policy.
    let trace: Value = serde_json::from_str(&streamed).unwrap();
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    let mut round_cats: BTreeSet<String> = BTreeSet::new();
    let mut baseline_names: BTreeSet<String> = BTreeSet::new();
    for e in events {
        if e.get("name").and_then(Value::as_str) != Some("scheduling_round") {
            continue;
        }
        let args = e.get("args").expect("round span has args");
        assert!(
            args.get("event").and_then(Value::as_str).is_some(),
            "round span misses the `event` arg: {e:?}"
        );
        assert!(
            args.get("vt").and_then(Value::as_f64).is_some(),
            "round span misses the `vt` arg: {e:?}"
        );
        let cat = e.get("cat").and_then(Value::as_str).expect("cat");
        round_cats.insert(cat.to_string());
        if cat == "baselines" {
            let sched = args
                .get("scheduler")
                .and_then(Value::as_str)
                .expect("baseline round names its scheduler");
            baseline_names.insert(sched.to_string());
        }
    }
    assert!(
        round_cats.contains("ones") && round_cats.contains("baselines"),
        "need rounds from both ONES and a baseline, got {round_cats:?}"
    );
    assert!(
        baseline_names.contains("Tiresias"),
        "Tiresias rounds missing: {baseline_names:?}"
    );
}
