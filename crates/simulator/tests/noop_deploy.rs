//! Regression test: a deployment that leaves a running job's
//! `(placement, global_batch)` unchanged is a **no-op** — no scaling
//! cost, no transition, no restart of the current schedule's epoch
//! accounting. Before the reconciliation layer, every redeploy went
//! through `transition_job` and reset `epochs_in_current_schedule`, so a
//! scheduler that re-emitted its current schedule (with a cosmetically
//! different local-batch split) silently paid a scaling cost each time.

use ones_cluster::{ClusterSpec, GpuId};
use ones_dlperf::PerfModel;
use ones_sched::ScalingCostModel;
use ones_schedcore::{ClusterView, ScalingMechanism, SchedEvent, Schedule, Scheduler};
use ones_simcore::SimTime;
use ones_simulator::{SimConfig, Simulation};
use ones_workload::{Trace, TraceConfig};

/// Redeploys the single job on the same two GPUs with the same global
/// batch on *every* event, but alternates the local split — the kind of
/// cosmetic churn an evolutionary search emits when two genomes encode
/// the same configuration differently.
struct SplitShuffler {
    deploys: u32,
}

impl Scheduler for SplitShuffler {
    fn name(&self) -> &'static str {
        "split-shuffler"
    }

    fn mechanism(&self) -> ScalingMechanism {
        ScalingMechanism::ElasticNccl
    }

    fn on_event(&mut self, event: SchedEvent, view: &ClusterView<'_>) -> Option<Schedule> {
        let job = match event {
            SchedEvent::JobArrived(id) | SchedEvent::EpochEnded(id) => id,
            SchedEvent::JobCompleted(_) | SchedEvent::Tick => return None,
        };
        if view.jobs.get(&job).is_some_and(|j| j.is_completed()) {
            return None;
        }
        self.deploys += 1;
        // Same placement {gpu0, gpu1}, same global batch 256 — only the
        // split differs between redeploys.
        let (a, b) = if self.deploys % 2 == 1 {
            (128, 128)
        } else {
            (64, 192)
        };
        let mut s = Schedule::empty(view.spec.total_gpus());
        s.assign(GpuId(0), job, a);
        s.assign(GpuId(1), job, b);
        Some(s)
    }

    fn next_wakeup(&self, _now: SimTime) -> Option<SimTime> {
        None
    }
}

#[test]
fn redeploying_the_same_placement_and_global_batch_is_free() {
    let trace = Trace::generate(TraceConfig {
        num_jobs: 1,
        arrival_rate: 1.0 / 10.0,
        seed: 21,
        kill_fraction: 0.0,
    });
    let spec = ClusterSpec::longhorn_subset(8);
    let result = Simulation::new(
        PerfModel::new(spec),
        &trace,
        Box::new(SplitShuffler { deploys: 0 }),
        SimConfig::default(),
    )
    .run();

    assert!(result.all_completed, "job did not complete");
    let job = result.jobs.values().next().expect("one job");
    assert!(job.epochs_done > 1, "job must train across several epochs");

    // Every epoch end redeployed (arrival + one per epoch-end while
    // running), yet only the initial start was a real transition.
    assert!(
        result.deployments > 1,
        "scheduler must have redeployed more than once, got {}",
        result.deployments
    );
    assert_eq!(
        result.transitions, 1,
        "cosmetic redeploys must not transition the job"
    );

    // The only scaling cost ever charged is the initial cold start —
    // epoch accounting was never reset, no drain/resize was paid.
    let cold_start = ScalingCostModel::default().cold_start_cost();
    assert!(
        (result.total_overhead - cold_start).abs() < 1e-9,
        "overhead {} != one cold start {}",
        result.total_overhead,
        cold_start
    );
}
