//! Per-job metric extraction and Figure 15 aggregates.

use crate::engine::SimResult;
use ones_simcore::SimTime;
use ones_stats::{ecdf, BoxPlot, Summary};
use serde::{Deserialize, Serialize};

/// An empirical CDF as `(x, F(x))` points.
pub type Cdf = Vec<(f64, f64)>;

/// Why a [`SimResult`] could not be turned into a derived view
/// ([`JobMetrics::try_from_result`], [`crate::Timeline::try_from_result`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromResultError {
    /// The run was truncated (stall or time/event cap): metrics over the
    /// incomplete job set would silently bias every average.
    Incomplete {
        /// Jobs that had not completed when the run stopped.
        unfinished: usize,
    },
    /// The run recorded no trace events (`SimConfig::record_trace` was
    /// off), so there is nothing to replay.
    NoTraceLog,
}

impl std::fmt::Display for FromResultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FromResultError::Incomplete { unfinished } => {
                write!(f, "run incomplete: {unfinished} job(s) unfinished")
            }
            FromResultError::NoTraceLog => {
                write!(f, "run recorded no trace events (record_trace = false)")
            }
        }
    }
}

impl std::error::Error for FromResultError {}

/// The three per-job metrics the paper reports (Figure 15's columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Job completion times, seconds, in job-id order.
    pub jct: Vec<f64>,
    /// Execution (running) times, seconds.
    pub exec: Vec<f64>,
    /// Queueing times, seconds.
    pub queue: Vec<f64>,
}

impl JobMetrics {
    /// Extracts metrics from a finished run.
    ///
    /// # Panics
    /// Panics if any job did not complete — metrics of a truncated run
    /// would silently bias every average. Use
    /// [`JobMetrics::try_from_result`] to inspect partial runs.
    #[must_use]
    pub fn from_result(result: &SimResult) -> Self {
        Self::try_from_result(result).expect("metrics requested for an incomplete run")
    }

    /// Fallible [`JobMetrics::from_result`]: returns
    /// [`FromResultError::Incomplete`] instead of panicking when the run
    /// was truncated, so failed runs (whose traces are often exactly the
    /// ones worth inspecting) still surface a diagnosable error.
    pub fn try_from_result(result: &SimResult) -> Result<Self, FromResultError> {
        if !result.all_completed {
            let unfinished = result.jobs.values().filter(|j| !j.is_completed()).count();
            // A run can also stop "incomplete" with jobs still pending
            // arrival; count at least one so the error is never empty.
            return Err(FromResultError::Incomplete {
                unfinished: unfinished.max(1),
            });
        }
        Ok(Self::completed_only(result))
    }

    /// Total aggregation for dirty runs: metrics over *normally completed*
    /// jobs only. Killed jobs (no meaningful JCT) and jobs the run left
    /// unfinished (stall, time/event cap — routine in replayed traces full
    /// of stragglers) are skipped instead of panicking; their counts live
    /// in [`SimResult::killed_jobs`] / [`SimResult::incomplete_jobs`], so
    /// nothing is silently dropped.
    #[must_use]
    pub fn completed_only(result: &SimResult) -> Self {
        let horizon = SimTime::from_secs(result.makespan);
        let mut jct = Vec::with_capacity(result.jobs.len());
        let mut exec = Vec::with_capacity(result.jobs.len());
        let mut queue = Vec::with_capacity(result.jobs.len());
        for job in result.jobs.values() {
            if job.killed {
                continue; // abnormal endings have no meaningful JCT
            }
            let Some(completion) = job.completion else {
                continue; // truncated run left this job unfinished
            };
            jct.push(completion - job.arrival);
            exec.push(job.exec_time);
            queue.push(job.queueing_time(horizon));
        }
        JobMetrics { jct, exec, queue }
    }

    /// Mean JCT (Figure 15a).
    #[must_use]
    pub fn mean_jct(&self) -> f64 {
        ones_stats::desc::mean(&self.jct)
    }

    /// Mean execution time (Figure 15b).
    #[must_use]
    pub fn mean_exec(&self) -> f64 {
        ones_stats::desc::mean(&self.exec)
    }

    /// Mean queueing time (Figure 15c).
    #[must_use]
    pub fn mean_queue(&self) -> f64 {
        ones_stats::desc::mean(&self.queue)
    }

    /// Box-plot statistics for the three metrics (Figure 15d–f).
    #[must_use]
    pub fn boxplots(&self) -> (BoxPlot, BoxPlot, BoxPlot) {
        (
            BoxPlot::of(&self.jct),
            BoxPlot::of(&self.exec),
            BoxPlot::of(&self.queue),
        )
    }

    /// Cumulative-frequency curves (Figure 15g–i).
    #[must_use]
    pub fn cdfs(&self) -> (Cdf, Cdf, Cdf) {
        (ecdf(&self.jct), ecdf(&self.exec), ecdf(&self.queue))
    }

    /// Full summary of the JCT distribution.
    #[must_use]
    pub fn jct_summary(&self) -> Summary {
        Summary::of(&self.jct)
    }

    /// Fraction of jobs completed within `secs` (§4.2 quotes 86 % within
    /// 200 s for ONES).
    #[must_use]
    pub fn fraction_within(&self, secs: f64) -> f64 {
        ones_stats::desc::fraction_leq(&self.jct, secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulation};
    use crate::experiment::SchedulerKind;
    use ones_cluster::ClusterSpec;
    use ones_dlperf::PerfModel;
    use ones_simcore::DetRng;
    use ones_workload::{Trace, TraceConfig};

    fn result() -> crate::engine::SimResult {
        let trace = Trace::generate(TraceConfig {
            num_jobs: 6,
            arrival_rate: 1.0 / 20.0,
            seed: 5,
            kill_fraction: 0.0,
        });
        let spec = ClusterSpec::longhorn_subset(16);
        let scheduler = SchedulerKind::Fifo.build(&spec, &trace, &DetRng::seed(1));
        Simulation::new(
            PerfModel::new(spec),
            &trace,
            scheduler,
            SimConfig::default(),
        )
        .run()
    }

    #[test]
    fn metrics_are_consistent() {
        let r = result();
        let m = JobMetrics::from_result(&r);
        assert_eq!(m.jct.len(), 6);
        for i in 0..6 {
            assert!((m.exec[i] + m.queue[i] - m.jct[i]).abs() < 1e-6);
            assert!(m.queue[i] >= -1e-9);
        }
        assert!(m.mean_jct() >= m.mean_exec());
        assert!(m.mean_jct() > 0.0);
    }

    #[test]
    fn truncated_run_yields_incomplete_error() {
        let trace = Trace::generate(TraceConfig {
            num_jobs: 6,
            arrival_rate: 1.0 / 20.0,
            seed: 5,
            kill_fraction: 0.0,
        });
        let spec = ClusterSpec::longhorn_subset(16);
        let scheduler = SchedulerKind::Fifo.build(&spec, &trace, &DetRng::seed(1));
        let r = Simulation::new(
            PerfModel::new(spec),
            &trace,
            scheduler,
            SimConfig {
                max_time: 10.0, // far before the last completion
                ..SimConfig::default()
            },
        )
        .run();
        assert!(!r.all_completed);
        let err = JobMetrics::try_from_result(&r).unwrap_err();
        match err {
            FromResultError::Incomplete { unfinished } => assert!(unfinished > 0),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("incomplete"));
    }

    #[test]
    fn complete_run_try_matches_panicking_constructor() {
        let r = result();
        assert_eq!(
            JobMetrics::try_from_result(&r).unwrap(),
            JobMetrics::from_result(&r)
        );
    }

    #[test]
    fn aggregates_do_not_panic_and_are_ordered() {
        let r = result();
        let m = JobMetrics::from_result(&r);
        let (bj, _, _) = m.boxplots();
        assert!(bj.q1 <= bj.median && bj.median <= bj.q3);
        let (cj, ce, cq) = m.cdfs();
        assert_eq!(cj.last().unwrap().1, 1.0);
        assert_eq!(ce.last().unwrap().1, 1.0);
        assert_eq!(cq.last().unwrap().1, 1.0);
        let s = m.jct_summary();
        assert_eq!(s.n, 6);
        let frac = m.fraction_within(s.max + 1.0);
        assert_eq!(frac, 1.0);
    }
}
