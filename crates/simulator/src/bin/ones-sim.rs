//! `ones-sim` — command-line front end for the cluster simulator.
//!
//! Runs one scheduler over a generated Table 2 trace and prints either a
//! human-readable report or machine-readable JSON.
//!
//! ```text
//! ones-sim --scheduler ones --jobs 60 --gpus 64 --rate-secs 30 --seed 42
//! ones-sim --scheduler tiresias --trace-source philly --json
//! ones-sim --trace-source file --trace-file philly_2017.csv
//! ones-sim --list-schedulers
//! ```

use ones_simulator::{run_experiment, ExperimentConfig, SchedulerKind, TraceSource};
use ones_workload::{ReplayConfig, TraceConfig};
use std::collections::BTreeMap;

fn usage() -> ! {
    eprintln!(
        "usage: ones-sim [--scheduler NAME] [--jobs N] [--gpus N]\n\
         \t[--trace-source table2|philly|file] [--trace-file FILE]\n\
         \t[--rate-secs SECONDS] [--seed N] [--sched-seed N]\n\
         \t[--kill-fraction F] [--burst-factor F] [--diurnal-amplitude F]\n\
         \t[--diurnal-period-secs S] [--duration-sigma F]\n\
         \t[--json] [--list-schedulers] [--dump-trace FILE]\n\
         \t[--obs off|counters|full] [--trace-out FILE] [--metrics-out FILE]\n\
         \t[--trace-chunk-events N] [--metrics-interval SECS]\n\
         \n\
         Runs one simulated experiment and reports per-scheduler metrics.\n\
         GPUs must be a positive multiple of 4 (whole Longhorn nodes).\n\
         --trace-source picks the workload: `table2` (default) is the\n\
         paper's synthetic mix; `philly` replays a Philly/Helios-style\n\
         cluster mixture (diurnal + bursty arrivals, heavy-tailed\n\
         durations, ~30% abnormal kills; tune with --burst-factor,\n\
         --diurnal-amplitude, --diurnal-period-secs, --duration-sigma);\n\
         `file` ingests --trace-file (.csv schema or JSON, see\n\
         EXPERIMENTS.md).\n\
         --trace-out writes a Chrome-trace JSON (open in ui.perfetto.dev)\n\
         and implies --obs full; spans stream to disk in\n\
         --trace-chunk-events chunks (default 65536; 0 keeps the whole\n\
         trace in memory and drops spans past the recorder cap).\n\
         --metrics-out writes a JSONL metrics series sampled every\n\
         --metrics-interval virtual seconds (default 300; 0 writes one\n\
         snapshot at exit). Observability never changes scheduling\n\
         decisions."
    );
    std::process::exit(2);
}

fn parse_scheduler(name: &str) -> Option<SchedulerKind> {
    match name.to_ascii_lowercase().as_str() {
        "ones" => Some(SchedulerKind::Ones),
        "drl" => Some(SchedulerKind::Drl),
        "tiresias" => Some(SchedulerKind::Tiresias),
        "optimus" => Some(SchedulerKind::Optimus),
        "fifo" => Some(SchedulerKind::Fifo),
        "srtf" | "srtf-oracle" => Some(SchedulerKind::SrtfOracle),
        "gandiva" => Some(SchedulerKind::Gandiva),
        "slaq" => Some(SchedulerKind::Slaq),
        "ones-greedy" => Some(SchedulerKind::OnesGreedy),
        "ones-nopred" => Some(SchedulerKind::OnesNoPredictor),
        "ones-noreorder" => Some(SchedulerKind::OnesNoReorder),
        "ones-ckpt" => Some(SchedulerKind::OnesCheckpoint),
        _ => None,
    }
}

const ALL_NAMES: [&str; 12] = [
    "ones",
    "drl",
    "tiresias",
    "optimus",
    "fifo",
    "srtf-oracle",
    "gandiva",
    "slaq",
    "ones-greedy",
    "ones-nopred",
    "ones-noreorder",
    "ones-ckpt",
];

fn main() {
    let mut args: BTreeMap<String, String> = BTreeMap::new();
    let mut flags: Vec<String> = Vec::new();
    let mut iter = std::env::args().skip(1);
    while let Some(key) = iter.next() {
        let Some(name) = key.strip_prefix("--") else {
            usage();
        };
        match name {
            "json" | "list-schedulers" | "help" => flags.push(name.to_string()),
            _ => {
                let Some(value) = iter.next() else { usage() };
                args.insert(name.to_string(), value);
            }
        }
    }
    if flags.iter().any(|f| f == "help") {
        usage();
    }
    if flags.iter().any(|f| f == "list-schedulers") {
        for n in ALL_NAMES {
            println!("{n}");
        }
        return;
    }

    let scheduler = args
        .get("scheduler")
        .map(|s| parse_scheduler(s).unwrap_or_else(|| usage()))
        .unwrap_or(SchedulerKind::Ones);
    let get = |k: &str, d: f64| -> f64 {
        args.get(k)
            .map(|v| v.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(d)
    };
    let source = match args.get("trace-source").map(String::as_str) {
        None | Some("table2") => TraceSource::Table2(TraceConfig {
            num_jobs: get("jobs", 60.0) as usize,
            arrival_rate: 1.0 / get("rate-secs", 30.0),
            seed: get("seed", 42.0) as u64,
            kill_fraction: get("kill-fraction", 0.0),
        }),
        Some("philly") | Some("replay") => {
            let defaults = ReplayConfig::default();
            TraceSource::Replay(ReplayConfig {
                num_jobs: get("jobs", 60.0) as usize,
                base_rate: 1.0 / get("rate-secs", 30.0),
                seed: get("seed", 42.0) as u64,
                kill_fraction: get("kill-fraction", defaults.kill_fraction),
                burst_factor: get("burst-factor", defaults.burst_factor),
                diurnal_amplitude: get("diurnal-amplitude", defaults.diurnal_amplitude),
                diurnal_period_secs: get("diurnal-period-secs", defaults.diurnal_period_secs),
                duration_log_sigma: get("duration-sigma", defaults.duration_log_sigma),
                ..defaults
            })
        }
        Some("file") => {
            let Some(path) = args.get("trace-file") else {
                eprintln!("--trace-source file needs --trace-file FILE");
                usage();
            };
            TraceSource::File(path.clone())
        }
        Some(other) => {
            eprintln!("unknown trace source {other:?} (table2|philly|file)");
            usage();
        }
    };
    let config = ExperimentConfig {
        gpus: get("gpus", 64.0) as u32,
        source,
        scheduler,
        sched_seed: get("sched-seed", 1.0) as u64,
        drl_pretrain_episodes: get("drl-pretrain", 2.0) as usize,
    };

    // Observability: --trace-out needs spans, so it implies `full` unless
    // the user pinned a level explicitly.
    let obs_level = match args.get("obs") {
        Some(s) => ones_obs::ObsLevel::parse(s).unwrap_or_else(|| usage()),
        None if args.contains_key("trace-out") => ones_obs::ObsLevel::Full,
        None => ones_obs::ObsLevel::Counters,
    };
    ones_obs::set_level(obs_level);

    // Streaming sinks (DESIGN.md §5): attach before the run so chunks
    // flush incrementally. `--trace-chunk-events 0` / `--metrics-interval
    // 0` select the legacy whole-in-memory writers.
    let chunk_events = args
        .get("trace-chunk-events")
        .map(|v| v.parse::<usize>().unwrap_or_else(|_| usage()))
        .unwrap_or(ones_obs::DEFAULT_TRACE_CHUNK_EVENTS);
    let metrics_interval = get("metrics-interval", ones_obs::DEFAULT_METRICS_INTERVAL_SECS);
    if metrics_interval < 0.0 {
        usage();
    }
    if let Some(path) = args.get("trace-out") {
        if chunk_events > 0 {
            ones_obs::attach_trace_sink(path, chunk_events).unwrap_or_else(|e| panic!("{e}"));
        }
    }
    if let Some(path) = args.get("metrics-out") {
        if metrics_interval > 0.0 {
            ones_obs::attach_metrics_sink(
                path,
                metrics_interval,
                ones_obs::DEFAULT_METRICS_MAX_BUCKETS,
            )
            .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    // Ingestion errors (malformed rows, invalid jobs) are user input
    // errors, not bugs: report and exit instead of panicking later.
    if let TraceSource::File(_) = &config.source {
        if let Err(e) = config.source.materialise() {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = args.get("dump-trace") {
        let trace = config.source.materialise().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
        trace
            .save(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("trace written to {path}");
    }

    let result = run_experiment(config.clone());
    if let Some(path) = args.get("trace-out") {
        if ones_obs::trace_sink_attached() {
            ones_obs::finalize_trace_sink().unwrap_or_else(|e| panic!("{e}"));
            eprintln!("chrome trace streamed to {path}");
        } else {
            ones_obs::write_chrome_trace(path).unwrap_or_else(|e| panic!("{e}"));
            let dropped = ones_obs::counter("obs.recorder.dropped_spans").value();
            if dropped > 0 {
                eprintln!(
                    "warning: in-memory trace writer dropped {dropped} spans past the \
                     recorder cap; use --trace-chunk-events > 0 to stream the full trace"
                );
            }
            eprintln!("chrome trace written to {path}");
        }
    }
    if let Some(path) = args.get("metrics-out") {
        if ones_obs::metrics_sink_attached() {
            ones_obs::finalize_metrics_sink(result.makespan).unwrap_or_else(|e| panic!("{e}"));
            eprintln!("metrics series streamed to {path}");
        } else {
            ones_obs::write_metrics_jsonl(path).unwrap_or_else(|e| panic!("{e}"));
            eprintln!("metrics snapshot written to {path}");
        }
    }
    if flags.iter().any(|f| f == "json") {
        let json = serde_json::json!({
            "scheduler": scheduler.name(),
            "gpus": config.gpus,
            "trace_source": config.source.label(),
            "jobs": result.completed_jobs + result.killed_jobs + result.incomplete_jobs,
            "seed": config.source.seed(),
            "mean_jct_secs": result.metrics.mean_jct(),
            "mean_exec_secs": result.metrics.mean_exec(),
            "mean_queue_secs": result.metrics.mean_queue(),
            "makespan_secs": result.makespan,
            "deployments": result.deployments,
            "total_overhead_secs": result.total_overhead,
            "gpu_utilization": result.gpu_utilization,
            "completed_jobs": result.completed_jobs,
            "killed_jobs": result.killed_jobs,
            "incomplete_jobs": result.incomplete_jobs,
            "goodput": result.goodput,
            "jct_secs": result.metrics.jct,
            "scheduler_perf": result.scheduler_perf.map(|p| serde_json::json!({
                "generations": p.generations,
                "candidates_scored": p.candidates_scored,
                "cache_hits": p.cache_hits,
                "cache_misses": p.cache_misses,
                "cache_hit_rate": p.cache_hit_rate(),
                "cache_warm_hit_rate": p.warm_hit_rate(),
                "cache_duplicate_computes": p.cache_duplicate_computes,
                "cache_invalidations": p.cache_invalidations,
                "refresh_ms": p.refresh_nanos as f64 / 1e6,
                "derive_ms": p.derive_nanos as f64 / 1e6,
                "score_ms": p.score_nanos as f64 / 1e6,
                "total_ms": p.total_nanos() as f64 / 1e6,
            })),
            "obs_level": obs_level.name(),
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&json).expect("serialisable")
        );
    } else {
        let total_jobs = result.completed_jobs + result.killed_jobs + result.incomplete_jobs;
        let seed_note = config
            .source
            .seed()
            .map_or_else(String::new, |s| format!(" (seed {s})"));
        println!(
            "{} on {} GPUs, {} jobs from the {} trace{}:",
            scheduler.name(),
            config.gpus,
            total_jobs,
            config.source.label(),
            seed_note
        );
        println!(
            "  outcomes           {:>5} completed / {} killed / {} unfinished (goodput {:.0}%)",
            result.completed_jobs,
            result.killed_jobs,
            result.incomplete_jobs,
            100.0 * result.goodput
        );
        println!("  average JCT        {:>10.1} s", result.metrics.mean_jct());
        println!(
            "  average execution  {:>10.1} s",
            result.metrics.mean_exec()
        );
        println!(
            "  average queueing   {:>10.1} s",
            result.metrics.mean_queue()
        );
        println!("  makespan           {:>10.1} s", result.makespan);
        println!("  deployments        {:>10}", result.deployments);
        println!("  scaling overhead   {:>10.1} s", result.total_overhead);
        println!(
            "  GPU utilisation    {:>9.1}%",
            100.0 * result.gpu_utilization
        );
        let s = result.metrics.jct_summary();
        println!(
            "  JCT quartiles      {:>10.1} / {:.1} / {:.1} (p90 {:.1}, max {:.1})",
            s.p25, s.median, s.p75, s.p90, s.max
        );
        if let Some(p) = result.scheduler_perf {
            println!(
                "  search             {} generations, {} candidates scored",
                p.generations, p.candidates_scored
            );
            println!(
                "  throughput cache   {:>9.1}% hit rate ({} hits / {} misses, \
                 {} dup computes, {} invalidations, warm {:.1}%)",
                100.0 * p.cache_hit_rate(),
                p.cache_hits,
                p.cache_misses,
                p.cache_duplicate_computes,
                p.cache_invalidations,
                100.0 * p.warm_hit_rate()
            );
            println!(
                "  search wall time   {:>10.1} ms (refresh {:.1}, derive {:.1}, score {:.1})",
                p.total_nanos() as f64 / 1e6,
                p.refresh_nanos as f64 / 1e6,
                p.derive_nanos as f64 / 1e6,
                p.score_nanos as f64 / 1e6
            );
        }
    }
}
