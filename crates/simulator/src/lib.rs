//! # ones-simulator — the cluster simulation runtime
//!
//! Drives a [`ones_schedcore::Scheduler`] against a trace on a simulated
//! GPU cluster (the substitution for the paper's Longhorn testbed — see
//! DESIGN.md §1):
//!
//! * [`engine`] — the discrete-event loop: arrivals, epoch completions,
//!   scheduler wake-ups; schedule transitions executed with
//!   mechanism-dependent costs (elastic NCCL ≈ 1 s vs checkpoint restart ≈
//!   tens of seconds); partial epochs pro-rated on preemption; convergence
//!   tracked by the ground-truth model of `ones-dlperf`.
//! * [`metrics`] — per-job JCT / execution-time / queueing-time extraction
//!   and the aggregate statistics Figure 15 plots.
//! * [`experiment`] — named scheduler construction, single-run and
//!   rayon-parallel sweep harnesses used by every bench binary.

pub mod backend;
pub mod engine;
pub mod experiment;
pub mod metrics;
pub mod timeline;

pub use backend::{
    BackendEvent, BackendEventKind, BackendPhase, ClusterBackend, NodeOccupancy, Occupancy,
    SimBackend,
};
pub use engine::{SimConfig, SimResult, Simulation, StepOutcome};
pub use experiment::{
    run_experiment, run_sweep, ExperimentConfig, ExperimentResult, SchedulerKind, TraceSource,
};
pub use metrics::{FromResultError, JobMetrics};
pub use timeline::{Timeline, TimelinePoint};
