//! Cluster-state time series reconstructed from a run's trace log.
//!
//! The aggregate [`crate::SimResult::gpu_utilization`] hides *when* the
//! cluster was busy. [`Timeline`] replays the recorded deployments and job
//! transitions into a step function of busy GPUs, running jobs and waiting
//! jobs over virtual time — the series behind "ONES can saturate the
//! cluster" (§2.2) and the fragmentation argument of §2.1.

use crate::engine::SimResult;
use crate::metrics::FromResultError;
use serde::{Deserialize, Serialize};

/// One sample of cluster state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Virtual time of the sample.
    pub at: f64,
    /// GPUs occupied by running jobs.
    pub busy_gpus: u32,
    /// Jobs currently holding GPUs.
    pub running_jobs: u32,
    /// Jobs submitted but holding no GPUs.
    pub waiting_jobs: u32,
}

/// A step-function time series of cluster state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Cluster capacity, for normalising utilisation.
    pub total_gpus: u32,
    /// Samples at every recorded state change, in time order.
    pub points: Vec<TimelinePoint>,
}

impl Timeline {
    /// Reconstructs the timeline from a run that recorded its trace
    /// (`SimConfig::record_trace = true`).
    ///
    /// # Panics
    /// Panics if the run recorded no trace events. Use
    /// [`Timeline::try_from_result`] to handle that case gracefully.
    #[must_use]
    pub fn from_result(result: &SimResult) -> Self {
        Self::try_from_result(result).expect("timeline needs record_trace = true")
    }

    /// Fallible [`Timeline::from_result`]: returns
    /// [`FromResultError::NoTraceLog`] instead of panicking when the run
    /// recorded no events. Truncated runs are fine — the timeline simply
    /// stops where the recording did.
    pub fn try_from_result(result: &SimResult) -> Result<Self, FromResultError> {
        if result.trace_log.is_empty() {
            return Err(FromResultError::NoTraceLog);
        }
        let mut points = Vec::new();
        let mut waiting: i64 = 0;
        // Per-job GPU holdings, derived from deployment summaries.
        let mut holdings: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
        let mut arrived: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut done: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();

        for ev in result.trace_log.events() {
            match (ev.kind.as_str(), ev.detail.as_str()) {
                ("job", "arrive") => {
                    arrived.insert(ev.subject);
                    waiting += 1;
                }
                ("job", "complete") | ("job", "killed") => {
                    done.insert(ev.subject);
                    if holdings.remove(&ev.subject).is_none() {
                        waiting -= 1;
                    }
                }
                ("sched", detail) if detail.starts_with("deploy") => {
                    // "deploy job3:B256xC2 job5:B128xC1 ..."
                    let mut new_holdings = std::collections::BTreeMap::new();
                    for tok in detail.split_whitespace().skip(1) {
                        let Some((job_part, c_part)) = tok.split_once(":B") else {
                            continue;
                        };
                        let Some((_, c)) = c_part.rsplit_once("xC") else {
                            continue;
                        };
                        let (Some(id), Ok(c)) = (
                            job_part.strip_prefix("job").and_then(|s| s.parse().ok()),
                            c.parse::<u32>(),
                        ) else {
                            continue;
                        };
                        if !done.contains(&id) {
                            new_holdings.insert(id, c);
                        }
                    }
                    holdings = new_holdings;
                    waiting = arrived
                        .iter()
                        .filter(|id| !done.contains(id) && !holdings.contains_key(id))
                        .count() as i64;
                }
                _ => {}
            }
            points.push(TimelinePoint {
                at: ev.at.as_secs(),
                busy_gpus: holdings.values().sum(),
                running_jobs: holdings.len() as u32,
                waiting_jobs: waiting.max(0) as u32,
            });
        }
        Ok(Timeline {
            total_gpus: result.total_gpus,
            points,
        })
    }

    /// Cluster state at time `t` (the latest sample at or before `t`).
    #[must_use]
    pub fn at(&self, t: f64) -> Option<TimelinePoint> {
        self.points.iter().take_while(|p| p.at <= t).last().copied()
    }

    /// Utilisation (busy/total) sampled on a uniform grid of `n` points
    /// over the run.
    #[must_use]
    pub fn utilization_series(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two samples");
        let end = self.points.last().map_or(0.0, |p| p.at);
        (0..n)
            .map(|i| {
                let t = end * i as f64 / (n - 1) as f64;
                let busy = self.at(t).map_or(0, |p| p.busy_gpus);
                (t, f64::from(busy) / f64::from(self.total_gpus.max(1)))
            })
            .collect()
    }

    /// Time-weighted mean utilisation of the step function.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        let mut acc = 0.0;
        let mut span = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].at - w[0].at;
            acc += f64::from(w[0].busy_gpus) * dt;
            span += dt;
        }
        if span <= 0.0 {
            0.0
        } else {
            acc / (span * f64::from(self.total_gpus.max(1)))
        }
    }

    /// Peak concurrent waiting-queue length.
    #[must_use]
    pub fn peak_waiting(&self) -> u32 {
        self.points
            .iter()
            .map(|p| p.waiting_jobs)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulation};
    use crate::experiment::SchedulerKind;
    use ones_cluster::ClusterSpec;
    use ones_dlperf::PerfModel;
    use ones_simcore::DetRng;
    use ones_workload::{Trace, TraceConfig};

    fn run(kind: SchedulerKind) -> SimResult {
        let trace = Trace::generate(TraceConfig {
            num_jobs: 8,
            arrival_rate: 1.0 / 15.0,
            seed: 5,
            kill_fraction: 0.0,
        });
        let spec = ClusterSpec::longhorn_subset(16);
        let scheduler = kind.build(&spec, &trace, &DetRng::seed(1));
        Simulation::new(
            PerfModel::new(spec),
            &trace,
            scheduler,
            SimConfig {
                record_trace: true,
                ..SimConfig::default()
            },
        )
        .run()
    }

    #[test]
    fn timeline_respects_capacity_and_time_order() {
        let r = run(SchedulerKind::Ones);
        let tl = Timeline::from_result(&r);
        assert!(!tl.points.is_empty());
        for w in tl.points.windows(2) {
            assert!(w[0].at <= w[1].at, "time order violated");
        }
        for p in &tl.points {
            assert!(p.busy_gpus <= tl.total_gpus, "over capacity at t={}", p.at);
        }
    }

    #[test]
    fn cluster_drains_by_the_end() {
        let r = run(SchedulerKind::Fifo);
        let tl = Timeline::from_result(&r);
        let last = tl.points.last().unwrap();
        assert_eq!(last.running_jobs, 0, "jobs left running at the end");
        assert_eq!(last.waiting_jobs, 0, "jobs left waiting at the end");
    }

    #[test]
    fn mean_utilization_matches_engine_accounting() {
        let r = run(SchedulerKind::Tiresias);
        let tl = Timeline::from_result(&r);
        // The timeline is reconstructed from deployments (allocation) while
        // the engine accrues service; both measure GPU occupancy, so they
        // must agree within a loose band.
        let a = tl.mean_utilization();
        let b = r.gpu_utilization();
        assert!((a - b).abs() < 0.2, "timeline {a} vs engine {b}");
    }

    #[test]
    fn utilization_series_is_normalised() {
        let r = run(SchedulerKind::Ones);
        let tl = Timeline::from_result(&r);
        let series = tl.utilization_series(50);
        assert_eq!(series.len(), 50);
        for (t, u) in &series {
            assert!(*t >= 0.0);
            assert!((0.0..=1.0).contains(u));
        }
        // Mid-run the cluster must have been busy at some point.
        assert!(series.iter().any(|(_, u)| *u > 0.2));
    }

    #[test]
    fn missing_trace_log_yields_error() {
        let trace = Trace::generate(TraceConfig {
            num_jobs: 2,
            arrival_rate: 1.0 / 15.0,
            seed: 5,
            kill_fraction: 0.0,
        });
        let spec = ClusterSpec::longhorn_subset(16);
        let scheduler = SchedulerKind::Fifo.build(&spec, &trace, &DetRng::seed(1));
        let r = Simulation::new(
            PerfModel::new(spec),
            &trace,
            scheduler,
            SimConfig::default(), // record_trace = false
        )
        .run();
        assert_eq!(
            Timeline::try_from_result(&r).unwrap_err(),
            FromResultError::NoTraceLog
        );
    }

    #[test]
    fn queue_builds_under_contention() {
        let r = run(SchedulerKind::Fifo);
        let tl = Timeline::from_result(&r);
        assert!(tl.peak_waiting() >= 1, "no queueing observed under FIFO");
        assert!(tl.at(-1.0).is_none());
    }
}
