//! The discrete-event simulation engine.
//!
//! State machine per job: *Waiting* → (deployment grants GPUs, start cost)
//! → *Running* epochs → … → *Completed* when the ground-truth convergence
//! model satisfies its patience window. A deployment that changes a job's
//! slots mid-epoch pro-rates the partial epoch (progress, samples,
//! attained service) and charges the scheduler's re-configuration cost
//! before the next epoch starts.

use ones_cluster::Placement;
use ones_dlperf::{ConvergenceState, PerfModel};
use ones_sched::ScalingCostModel;
use ones_schedcore::{
    ClusterView, JobPhase, JobStatus, OpKind, PhasePlan, Reconciler, ScalingMechanism, ScalingOp,
    SchedEvent, Schedule, Scheduler, SchedulerPerfCounters,
};
use ones_simcore::{EventQueue, SimTime, TraceLog};
use ones_sync::LazyLock;
use ones_workload::{JobId, Trace};
use std::collections::BTreeMap;

// Engine observability (DESIGN.md §5). Wall-time spans cover the host
// cost of processing each event; virtual-time spans and instants replay
// the simulated timeline (pid 1 in the trace export, one track per job).
static EVENTS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("simulator.engine.events"));
static DEPLOYMENTS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("simulator.engine.deployments"));
static TRANSITIONS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("simulator.engine.transitions"));
static EPOCHS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("simulator.engine.epochs"));
static QUEUE_DEPTH: LazyLock<&'static ones_obs::Gauge> =
    LazyLock::new(|| ones_obs::gauge("simulator.engine.queue_depth"));
static RUNNING_JOBS: LazyLock<&'static ones_obs::Gauge> =
    LazyLock::new(|| ones_obs::gauge("simulator.engine.running_jobs"));
static WAITING_JOBS: LazyLock<&'static ones_obs::Gauge> =
    LazyLock::new(|| ones_obs::gauge("simulator.engine.waiting_jobs"));
static OVERHEAD_S: LazyLock<&'static ones_obs::Histogram> =
    LazyLock::new(|| ones_obs::histogram("simulator.engine.transition_overhead_s"));
static RECONCILE_OPS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("simulator.reconcile.ops"));
static RECONCILE_NOOP_DEPLOYS: LazyLock<&'static ones_obs::Counter> =
    LazyLock::new(|| ones_obs::counter("simulator.reconcile.noop_deploys"));
static RECONCILE_PHASE_S: LazyLock<&'static ones_obs::Histogram> =
    LazyLock::new(|| ones_obs::histogram("simulator.reconcile.phase_s"));

/// Engine tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Hard stop on virtual time, seconds.
    pub max_time: f64,
    /// Hard stop on processed events (runaway guard).
    pub max_events: u64,
    /// Record a [`TraceLog`] of every transition.
    pub record_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_time: 1.0e6,
            max_events: 20_000_000,
            record_trace: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival(JobId),
    EpochEnd {
        job: JobId,
        seq: u64,
    },
    /// External termination (owner kill / crash) — §2.1's abnormal endings.
    Kill(JobId),
    Tick,
}

/// A running job's current execution segment.
#[derive(Debug, Clone)]
struct Segment {
    placement: Placement,
    global_batch: u32,
    /// Duration of one full epoch under this configuration.
    epoch_duration: f64,
    /// When the current epoch's useful work began (after costs).
    epoch_started: SimTime,
    /// Last time exec/service counters were accrued.
    last_accrual: SimTime,
}

#[derive(Debug)]
struct SimJob {
    status: JobStatus,
    conv: ConvergenceState,
    /// Bumped on every re-configuration; stale `EpochEnd` events are
    /// dropped by sequence mismatch.
    epoch_seq: u64,
    segment: Option<Segment>,
}

/// What one call to [`Simulation::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event (or a stall-probe tick) was dispatched; more work may
    /// remain.
    Progressed,
    /// Nothing left to do: every arrived job is finished and the queue is
    /// drained (or the scheduler was probed once and produced no new
    /// work). Injecting a new job makes the simulation progress again.
    Idle,
    /// The time or event cap fired; the run should stop.
    Capped,
}

/// Result of a completed simulation run.
#[derive(Debug)]
pub struct SimResult {
    /// Cluster size the run used.
    pub total_gpus: u32,
    /// Final job statuses (all phases).
    pub jobs: BTreeMap<JobId, JobStatus>,
    /// Virtual time when the last event was processed.
    pub makespan: f64,
    /// Whether every job completed (false on stall or time/event cap).
    pub all_completed: bool,
    /// Jobs that ran to convergence.
    pub completed_jobs: usize,
    /// Jobs that ended abnormally (killed/crashed) — §2.1's abnormal
    /// endings; they carry no meaningful JCT.
    pub killed_jobs: usize,
    /// Jobs still pending or unfinished when the run stopped (stall, time
    /// or event cap — replayed traces with stragglers hit these).
    pub incomplete_jobs: usize,
    /// Optional transition log.
    pub trace_log: TraceLog,
    /// Number of schedule deployments executed.
    pub deployments: u64,
    /// Number of per-job re-configurations (start/resume/resize) executed.
    pub transitions: u64,
    /// Total re-configuration overhead charged across all jobs, seconds.
    pub total_overhead: f64,
    /// Scheduler-internal hot-loop counters, when the scheduler keeps any
    /// (ONES reports its evolutionary-search diagnostics here).
    pub scheduler_perf: Option<SchedulerPerfCounters>,
}

impl SimResult {
    /// Mean cluster GPU utilisation over the run: busy GPU-seconds (attained
    /// service of all jobs, including re-configuration pauses while holding
    /// GPUs) over capacity GPU-seconds. The quantity ONES's elasticity is
    /// designed to maximise (§1).
    #[must_use]
    pub fn gpu_utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.total_gpus == 0 {
            return 0.0;
        }
        let busy: f64 = self.jobs.values().map(|j| j.gpu_service).sum();
        (busy / (f64::from(self.total_gpus) * self.makespan)).min(1.0)
    }

    /// Goodput fraction: jobs that ran to convergence over all jobs in the
    /// trace. 1.0 for a clean Table 2 run; ~0.7 for a Philly-style replay
    /// with its ~30 % abnormal terminations.
    #[must_use]
    pub fn goodput(&self) -> f64 {
        let total = self.completed_jobs + self.killed_jobs + self.incomplete_jobs;
        if total == 0 {
            return 0.0;
        }
        self.completed_jobs as f64 / total as f64
    }
}

/// The simulation: one scheduler, one trace, one cluster.
///
/// # Example
/// ```
/// use ones_cluster::ClusterSpec;
/// use ones_dlperf::PerfModel;
/// use ones_simcore::DetRng;
/// use ones_simulator::{SchedulerKind, SimConfig, Simulation};
/// use ones_workload::{Trace, TraceConfig};
///
/// let cluster = ClusterSpec::longhorn_subset(16);
/// let trace = Trace::generate(TraceConfig {
///     num_jobs: 3,
///     arrival_rate: 0.1,
///     seed: 7,
///     kill_fraction: 0.0,
/// });
/// let scheduler = SchedulerKind::Fifo.build(&cluster, &trace, &DetRng::seed(1));
/// let result = Simulation::new(PerfModel::new(cluster), &trace, scheduler,
///                              SimConfig::default()).run();
/// assert!(result.all_completed);
/// assert_eq!(result.jobs.len(), 3);
/// ```
pub struct Simulation {
    config: SimConfig,
    perf: PerfModel,
    cost: ScalingCostModel,
    scheduler: Box<dyn Scheduler>,
    queue: EventQueue<Event>,
    /// Jobs that have not arrived yet.
    pending: BTreeMap<JobId, ones_workload::JobSpec>,
    /// Jobs that have arrived (what schedulers can see).
    jobs: BTreeMap<JobId, SimJob>,
    /// Desired-vs-actual reconciliation state; its actual schedule is the
    /// single source of truth for what is deployed.
    recon: Reconciler,
    statuses: BTreeMap<JobId, JobStatus>,
    trace_log: TraceLog,
    next_tick: Option<SimTime>,
    deployments: u64,
    transitions: u64,
    total_overhead: f64,
    events_processed: u64,
    stalled_once: bool,
}

impl Simulation {
    /// Creates a simulation of `trace` under `scheduler` on the cluster
    /// described by `perf`.
    #[must_use]
    pub fn new(
        perf: PerfModel,
        trace: &Trace,
        scheduler: Box<dyn Scheduler>,
        config: SimConfig,
    ) -> Self {
        let total_gpus = perf.spec().total_gpus();
        let mut queue = EventQueue::new();
        let mut pending = BTreeMap::new();
        for job in &trace.jobs {
            queue.push(SimTime::from_secs(job.arrival_secs), Event::Arrival(job.id));
            pending.insert(job.id, job.clone());
        }
        Simulation {
            pending,
            jobs: BTreeMap::new(),
            config,
            perf,
            cost: ScalingCostModel::default(),
            scheduler,
            queue,
            recon: Reconciler::new(total_gpus),
            statuses: BTreeMap::new(),
            trace_log: TraceLog::new(),
            next_tick: None,
            deployments: 0,
            transitions: 0,
            total_overhead: 0.0,
            events_processed: 0,
            stalled_once: false,
        }
    }

    /// Runs to completion (or stall/caps) and returns the result.
    #[must_use]
    pub fn run(self) -> SimResult {
        self.run_returning_scheduler().0
    }

    /// Like [`Simulation::run`] but hands the scheduler back afterwards —
    /// used for DRL pre-training episodes, where the learned policy must
    /// survive the run.
    #[must_use]
    pub fn run_returning_scheduler(mut self) -> (SimResult, Box<dyn Scheduler>) {
        while self.step() == StepOutcome::Progressed {}
        self.into_result()
    }

    /// Dispatches the next pending event and returns what happened.
    ///
    /// This is the incremental face of the engine: `run` is exactly
    /// `while step() == Progressed {}`. A long-running service (`ones-d`)
    /// interleaves `step` with [`Simulation::inject`] to feed arrivals in
    /// while virtual time advances. When the queue drains with unfinished
    /// jobs the scheduler is probed once with a tick before `Idle` is
    /// declared, mirroring the batch run's stall handling.
    pub fn step(&mut self) -> StepOutcome {
        if self.all_completed() {
            return StepOutcome::Idle;
        }
        let Some((now, event)) = self.queue.pop() else {
            // Queue drained with incomplete jobs: poke the scheduler
            // once; if nothing changes, declare a stall.
            if self.stalled_once {
                return StepOutcome::Idle;
            }
            self.stalled_once = true;
            let now = self.last_time();
            self.dispatch(now, Event::Tick);
            return StepOutcome::Progressed;
        };
        self.events_processed += 1;
        if now.as_secs() > self.config.max_time || self.events_processed > self.config.max_events {
            return StepOutcome::Capped;
        }
        self.stalled_once = false;
        self.dispatch(now, event);
        StepOutcome::Progressed
    }

    /// Adds a job to the simulation after construction (live submission).
    ///
    /// The spec is validated like trace ingestion; an arrival time in the
    /// simulated past is clamped forward to the current virtual time (the
    /// event queue is monotonic). Returns the effective arrival time in
    /// seconds.
    ///
    /// # Errors
    /// Fails on an invalid spec or a duplicate job id.
    pub fn inject(&mut self, mut spec: ones_workload::JobSpec) -> Result<f64, String> {
        let id = spec.id;
        if self.pending.contains_key(&id) || self.jobs.contains_key(&id) {
            return Err(format!("duplicate job id {id}"));
        }
        let at = SimTime::from_secs(spec.arrival_secs).max(self.queue.now());
        spec.arrival_secs = at.as_secs();
        spec.try_validate()?;
        self.queue.push(at, Event::Arrival(id));
        self.pending.insert(id, spec);
        // New work: an earlier stall probe no longer means "done".
        self.stalled_once = false;
        Ok(at.as_secs())
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Events dispatched so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The currently deployed (actual) schedule.
    #[must_use]
    pub fn deployed(&self) -> &Schedule {
        self.recon.actual()
    }

    /// The reconciliation state (actual schedule + in-flight operations),
    /// for persistence by long-running services.
    #[must_use]
    pub fn reconciler(&self) -> &Reconciler {
        &self.recon
    }

    /// The cluster this simulation runs on.
    #[must_use]
    pub fn cluster_spec(&self) -> &ones_cluster::ClusterSpec {
        self.perf.spec()
    }

    /// Statuses of jobs whose arrival event has been dispatched (what the
    /// scheduler can see). Jobs submitted but not yet arrived in virtual
    /// time are excluded; [`Simulation::job_statuses`] includes them.
    #[must_use]
    pub fn arrived_job_statuses(&self) -> BTreeMap<JobId, JobStatus> {
        self.jobs
            .iter()
            .map(|(id, job)| (*id, job.status.clone()))
            .collect()
    }

    /// Number of submitted jobs whose arrival is still in the future.
    #[must_use]
    pub fn queued_count(&self) -> usize {
        self.pending.len()
    }

    /// Point-in-time status of every job the engine knows about: arrived
    /// jobs carry their live [`JobStatus`]; jobs still pending arrival are
    /// reported as freshly submitted at their (future) arrival time.
    #[must_use]
    pub fn job_statuses(&self) -> BTreeMap<JobId, JobStatus> {
        let mut out = self.arrived_job_statuses();
        for (id, spec) in &self.pending {
            out.insert(
                *id,
                JobStatus::submitted(spec.clone(), SimTime::from_secs(spec.arrival_secs)),
            );
        }
        out
    }

    /// Forwards a live tuning change to the scheduler; returns whether the
    /// scheduler applied anything.
    pub fn reconfigure_scheduler(&mut self, tuning: &ones_schedcore::SchedTuning) -> bool {
        self.scheduler.reconfigure(tuning)
    }

    /// The driving scheduler's display name.
    #[must_use]
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Consumes the simulation and produces the final accounting, exactly
    /// as a completed [`Simulation::run`] would.
    #[must_use]
    pub fn into_result(mut self) -> (SimResult, Box<dyn Scheduler>) {
        let makespan = self.last_time().as_secs();
        let all_completed = self.all_completed();
        for (id, job) in &self.jobs {
            self.statuses.insert(*id, job.status.clone());
        }
        // Outcome accounting: normal completions, abnormal endings, and
        // whatever the run left unfinished (including jobs that never
        // arrived before a time/event cap — they are not in `jobs`).
        let killed_jobs = self.jobs.values().filter(|j| j.status.killed).count();
        let completed_jobs = self
            .jobs
            .values()
            .filter(|j| j.status.is_completed() && !j.status.killed)
            .count();
        let incomplete_jobs = self.pending.len()
            + self
                .jobs
                .values()
                .filter(|j| !j.status.is_completed())
                .count();
        let result = SimResult {
            total_gpus: self.perf.spec().total_gpus(),
            jobs: self.statuses,
            makespan,
            all_completed,
            completed_jobs,
            killed_jobs,
            incomplete_jobs,
            trace_log: self.trace_log,
            deployments: self.deployments,
            transitions: self.transitions,
            total_overhead: self.total_overhead,
            scheduler_perf: self.scheduler.perf_counters(),
        };
        (result, self.scheduler)
    }

    fn last_time(&self) -> SimTime {
        self.queue.now()
    }

    fn all_completed(&self) -> bool {
        self.pending.is_empty() && self.jobs.values().all(|j| j.status.is_completed())
    }

    fn record(&mut self, at: SimTime, kind: &str, subject: u64, detail: &str) {
        if self.config.record_trace {
            self.trace_log.record(at, kind, subject, detail);
        }
    }

    fn dispatch(&mut self, now: SimTime, event: Event) {
        EVENTS.inc();
        // Drive periodic metrics snapshots off the virtual clock so
        // streamed series are reproducible across replays of the same
        // seed (a cheap atomic pre-check when no metrics sink is attached).
        ones_obs::metrics_tick(now.as_secs());
        let _event_span = ones_obs::span!("simulator", "event")
            .with_arg(
                "kind",
                match event {
                    Event::Arrival(_) => "arrival",
                    Event::EpochEnd { .. } => "epoch_end",
                    Event::Kill(_) => "kill",
                    Event::Tick => "tick",
                },
            )
            .with_arg("vt", now.as_secs());
        let sched_event = match event {
            Event::Arrival(id) => {
                let spec = self.pending.remove(&id).expect("arrival of unknown job");
                self.jobs.insert(
                    id,
                    SimJob {
                        status: JobStatus::submitted(spec.clone(), now),
                        conv: ConvergenceState::new(spec.convergence),
                        epoch_seq: 0,
                        segment: None,
                    },
                );
                if let Some(delay) = spec.kill_after_secs {
                    self.queue.push(now + delay, Event::Kill(id));
                }
                self.record(now, "job", id.0, "arrive");
                Some(SchedEvent::JobArrived(id))
            }
            Event::EpochEnd { job, seq } => self.handle_epoch_end(now, job, seq),
            Event::Kill(id) => self.handle_kill(now, id),
            Event::Tick => {
                self.next_tick = None;
                Some(SchedEvent::Tick)
            }
        };
        let Some(sched_event) = sched_event else {
            return; // stale epoch event
        };
        self.invoke_scheduler(now, sched_event);
    }

    fn invoke_scheduler(&mut self, now: SimTime, event: SchedEvent) {
        // Sync status snapshots.
        self.statuses.clear();
        let (mut running, mut waiting) = (0u64, 0u64);
        for (id, job) in &self.jobs {
            match job.status.phase {
                JobPhase::Running => running += 1,
                JobPhase::Waiting => waiting += 1,
                JobPhase::Completed => {}
            }
            self.statuses.insert(*id, job.status.clone());
        }
        QUEUE_DEPTH.set(self.queue.len() as f64);
        RUNNING_JOBS.set(running as f64);
        WAITING_JOBS.set(waiting as f64);
        let desired = {
            let view = ClusterView {
                now,
                spec: self.perf.spec(),
                perf: &self.perf,
                jobs: &self.statuses,
                deployed: self.recon.actual(),
            };
            self.scheduler.on_event(event, &view)
        };
        if let Some(schedule) = desired {
            self.deploy(now, schedule);
        }
        // Timer management: arm the earliest requested wake-up.
        if let Some(t) = self.scheduler.next_wakeup(now) {
            let t = t.max(now + 1e-3);
            if t.as_secs() <= self.config.max_time && self.next_tick.is_none_or(|cur| t < cur) {
                self.queue.push(t, Event::Tick);
                self.next_tick = Some(t);
            }
        }
    }

    /// External termination: the job ends now regardless of convergence.
    /// Partial-epoch progress is wound down exactly like a preemption, the
    /// job is reported to the scheduler as completed (real schedulers see
    /// killed jobs simply disappear), and its telemetry — however partial —
    /// flows into the ONES predictor's training set, exercising the §2.1
    /// robustness argument.
    fn handle_kill(&mut self, now: SimTime, id: JobId) -> Option<SchedEvent> {
        let job = self.jobs.get_mut(&id)?;
        if job.status.is_completed() {
            return None; // converged before the kill fired
        }
        if let Some(segment) = job.segment.take() {
            let held = now - segment.last_accrual;
            job.status.exec_time += held;
            job.status.gpu_service += held * segment.placement.len() as f64;
            if now > segment.epoch_started && segment.epoch_duration > 0.0 {
                let fraction =
                    ((now - segment.epoch_started) / segment.epoch_duration).clamp(0.0, 1.0);
                job.status.samples_processed += fraction * job.status.spec.dataset_size as f64;
            }
        }
        job.epoch_seq += 1;
        job.status.phase = JobPhase::Completed;
        job.status.killed = true;
        job.status.completion = Some(now);
        job.status.current_batch = 0;
        job.status.current_gpus = 0;
        self.recon.observe_removed(id);
        self.record(now, "job", id.0, "killed");
        Some(SchedEvent::JobCompleted(id))
    }

    /// Applies a completed epoch; returns the scheduler event to deliver,
    /// or `None` if the event was stale.
    fn handle_epoch_end(&mut self, now: SimTime, id: JobId, seq: u64) -> Option<SchedEvent> {
        let scales = self.scheduler.scales_batch_sizes();
        let job = self.jobs.get_mut(&id)?;
        if job.epoch_seq != seq || !job.status.is_running() {
            return None;
        }
        let segment = job.segment.as_mut().expect("running job has a segment");
        EPOCHS.inc();
        if ones_obs::spans_enabled() {
            ones_obs::virtual_span(
                "epoch",
                "simulator",
                id.0,
                segment.epoch_started.as_secs(),
                now.as_secs(),
                vec![
                    ("batch", u64::from(segment.global_batch).into()),
                    ("gpus", segment.placement.len().into()),
                ],
            );
        }
        let lr_scaled = scales || segment.global_batch == job.status.spec.submit_batch;
        job.conv.advance_epoch(segment.global_batch, lr_scaled);

        // Telemetry upload (§3.1): workers report at each epoch end.
        let held = now - segment.last_accrual;
        segment.last_accrual = now;
        job.status.exec_time += held;
        job.status.gpu_service += held * segment.placement.len() as f64;
        job.status.epochs_done = job.conv.epochs_done();
        job.status.samples_processed += job.status.spec.dataset_size as f64;
        job.status.current_loss = job.conv.loss();
        job.status.current_accuracy = job.conv.accuracy();
        job.status.throughput = job.status.spec.dataset_size as f64 / segment.epoch_duration;
        job.status.epochs_in_current_schedule += 1;

        if job.conv.converged() {
            job.status.phase = JobPhase::Completed;
            job.status.completion = Some(now);
            job.status.current_batch = 0;
            job.status.current_gpus = 0;
            job.segment = None;
            job.epoch_seq += 1;
            self.recon.observe_removed(id);
            self.record(now, "job", id.0, "complete");
            Some(SchedEvent::JobCompleted(id))
        } else {
            // Next epoch under the same configuration.
            let segment = job.segment.as_mut().expect("still running");
            segment.epoch_started = now;
            let at = now + segment.epoch_duration;
            let seq = job.epoch_seq;
            if at.as_secs() <= self.config.max_time {
                self.queue.push(at, Event::EpochEnd { job: id, seq });
            }
            Some(SchedEvent::EpochEnded(id))
        }
    }

    /// Reconciles the desired `schedule` against the actual one at `now`:
    /// the diff becomes typed [`ScalingOp`]s, each executed as a
    /// [`ones_schedcore::ScalingPhase`] state machine and committed into
    /// the reconciler's actual schedule. Jobs whose `(placement set,
    /// global batch)` did not change get no operation: their slots, epoch
    /// counters and running segments are left untouched.
    fn deploy(&mut self, now: SimTime, schedule: Schedule) {
        schedule
            .validate(self.perf.spec(), |j| {
                self.jobs
                    .get(&j)
                    .map_or(0, |job| job.status.spec.profile().max_local_batch)
            })
            .expect("scheduler produced an invalid schedule");
        for job in schedule.running_jobs().keys() {
            assert!(
                self.jobs.get(job).is_some_and(|j| !j.status.is_completed()),
                "scheduler placed unknown or completed job {job}"
            );
        }
        self.deployments += 1;
        DEPLOYMENTS.inc();
        if ones_obs::spans_enabled() {
            ones_obs::virtual_instant(
                "deploy",
                "simulator",
                0,
                now.as_secs(),
                vec![("jobs", schedule.running_jobs().len().into())],
            );
        }
        if self.config.record_trace {
            let detail: Vec<String> = schedule
                .running_jobs()
                .iter()
                .map(|(j, (b, c))| format!("{j}:B{b}xC{c}"))
                .collect();
            let d = format!("deploy {}", detail.join(" "));
            self.record(now, "sched", 0, &d);
        }

        let ops = self.recon.plan(&schedule);
        if ops.is_empty() {
            RECONCILE_NOOP_DEPLOYS.inc();
            return;
        }
        for mut op in ops {
            RECONCILE_OPS.inc();
            self.recon.begin(op.clone());
            self.execute_op(now, &mut op, &schedule);
            self.recon.commit(&op);
        }
    }

    /// Executes one scaling operation: winds down the job's current
    /// segment, walks the op's phase machine (charging the phase plan's
    /// total as re-configuration overhead) and starts the new segment.
    fn execute_op(&mut self, now: SimTime, op: &mut ScalingOp, schedule: &Schedule) {
        let mechanism = self.scheduler.mechanism();
        let scales = self.scheduler.scales_batch_sizes();
        let allreduce = *self.perf.allreduce();
        let perf = self.perf;
        let cost_model = self.cost;
        let id = op.job;
        let job = self.jobs.get_mut(&id).expect("known job");

        // Wind down the current segment (pro-rated partial epoch).
        let was_running = job.segment.is_some();
        if let Some(segment) = job.segment.take() {
            let held = now - segment.last_accrual;
            job.status.exec_time += held;
            job.status.gpu_service += held * segment.placement.len() as f64;
            if now > segment.epoch_started && segment.epoch_duration > 0.0 {
                let fraction =
                    ((now - segment.epoch_started) / segment.epoch_duration).clamp(0.0, 1.0);
                let lr_scaled = scales || segment.global_batch == job.status.spec.submit_batch;
                job.conv
                    .advance_fraction(segment.global_batch, lr_scaled, fraction * 0.999_999);
                job.status.samples_processed += fraction * job.status.spec.dataset_size as f64;
            }
        }
        job.epoch_seq += 1;

        if matches!(op.kind, OpKind::Preempt) {
            // Releasing GPUs is free: every phase is zero-duration.
            while op.advance(&PhasePlan::ZERO).is_some() {}
            job.status.phase = JobPhase::Waiting;
            job.status.current_batch = 0;
            job.status.current_gpus = 0;
            if was_running {
                self.record(now, "job", id.0, "preempt");
                if ones_obs::spans_enabled() {
                    ones_obs::virtual_instant("preempt", "simulator", id.0, now.as_secs(), vec![]);
                }
            }
            return;
        }

        // (Re)start under the new configuration.
        let placement = schedule.placement(id);
        let batches = schedule.local_batches(id);
        let global_batch = schedule.global_batch(id);
        let profile = job.status.spec.profile();
        let plan = if !was_running {
            match (mechanism, job.status.first_start.is_some()) {
                // Fresh start: spawn processes, build the input pipeline.
                (_, false) => cost_model.cold_start_plan(),
                // Resume: elastic re-spawns workers; checkpointed systems
                // additionally reload the saved state; suspend/resume
                // swaps it back from host memory.
                (ScalingMechanism::ElasticNccl, true) => cost_model.cold_start_plan(),
                (ScalingMechanism::CheckpointRestart, true) => cost_model.checkpoint_plan(&profile),
                (ScalingMechanism::SuspendResume, true) => cost_model.suspend_resume_plan(&profile),
            }
        } else {
            let workers_joined = matches!(
                op.kind,
                OpKind::Scale {
                    workers_joined: true
                }
            );
            match mechanism {
                ScalingMechanism::ElasticNccl => {
                    cost_model.elastic_plan(&profile, &allreduce, &placement, workers_joined)
                }
                ScalingMechanism::CheckpointRestart => cost_model.checkpoint_plan(&profile),
                ScalingMechanism::SuspendResume => cost_model.suspend_resume_plan(&profile),
            }
        };
        let overhead = plan.total();

        // Walk the phase machine: one observability span per timed phase,
        // laid end to end over the overhead window.
        let mut phase_start = now.as_secs();
        while let Some((phase, duration)) = op.advance(&plan) {
            RECONCILE_PHASE_S.observe(duration);
            if ones_obs::spans_enabled() {
                ones_obs::virtual_span(
                    phase.name(),
                    "simulator",
                    id.0,
                    phase_start,
                    phase_start + duration,
                    vec![("op", op.kind.name().into())],
                );
            }
            phase_start += duration;
        }
        self.total_overhead += overhead;
        self.transitions += 1;
        TRANSITIONS.inc();
        OVERHEAD_S.observe(overhead);

        // An abrupt batch jump injects its loss spike now (Figure 13).
        job.conv.on_batch_change(global_batch);

        let epoch_duration =
            perf.epoch_time(&profile, job.status.spec.dataset_size, &batches, &placement);
        let epoch_started = now + overhead;
        job.segment = Some(Segment {
            placement: placement.clone(),
            global_batch,
            epoch_duration,
            epoch_started,
            last_accrual: now,
        });
        job.status.phase = JobPhase::Running;
        job.status.first_start.get_or_insert(now);
        job.status.current_batch = global_batch;
        job.status.current_gpus = placement.len() as u32;
        job.status.epochs_in_current_schedule = 0;
        let at = epoch_started + epoch_duration;
        let seq = job.epoch_seq;
        if at.as_secs() <= self.config.max_time {
            self.queue.push(at, Event::EpochEnd { job: id, seq });
        }
        self.record(now, "job", id.0, "start");
        if ones_obs::spans_enabled() {
            ones_obs::virtual_instant(
                "start",
                "simulator",
                id.0,
                now.as_secs(),
                vec![
                    ("batch", u64::from(global_batch).into()),
                    ("gpus", placement.len().into()),
                    ("overhead_s", overhead.into()),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SchedulerKind;
    use ones_cluster::ClusterSpec;
    use ones_simcore::DetRng;
    use ones_workload::TraceConfig;

    fn small_trace(n: usize, seed: u64) -> Trace {
        Trace::generate(TraceConfig {
            num_jobs: n,
            arrival_rate: 1.0 / 20.0,
            seed,
            kill_fraction: 0.0,
        })
    }

    fn run(kind: SchedulerKind, n: usize, gpus: u32) -> SimResult {
        let trace = small_trace(n, 7);
        let spec = ClusterSpec::longhorn_subset(gpus);
        let scheduler = kind.build(&spec, &trace, &DetRng::seed(11));
        let sim = Simulation::new(
            PerfModel::new(spec),
            &trace,
            scheduler,
            SimConfig {
                record_trace: true,
                ..SimConfig::default()
            },
        );
        sim.run()
    }

    #[test]
    fn fifo_completes_a_small_trace() {
        let r = run(SchedulerKind::Fifo, 8, 16);
        assert!(r.all_completed, "FIFO run did not complete");
        for job in r.jobs.values() {
            assert!(job.is_completed());
            let jct = job.jct().unwrap();
            assert!(jct > 0.0 && jct < 100_000.0, "{}: jct {jct}", job.spec.name);
            assert!(job.exec_time > 0.0);
            assert!(job.exec_time <= jct + 1e-6);
        }
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn ones_completes_a_small_trace() {
        let r = run(SchedulerKind::Ones, 8, 16);
        assert!(r.all_completed, "ONES run did not complete");
        for job in r.jobs.values() {
            assert!(job.is_completed(), "{} incomplete", job.spec.name);
        }
        assert!(r.deployments > 0);
    }

    #[test]
    fn tiresias_and_optimus_complete() {
        for kind in [SchedulerKind::Tiresias, SchedulerKind::Optimus] {
            let r = run(kind, 6, 16);
            assert!(r.all_completed, "{kind:?} run did not complete");
        }
    }

    #[test]
    fn drl_and_srtf_complete() {
        for kind in [SchedulerKind::Drl, SchedulerKind::SrtfOracle] {
            let r = run(kind, 6, 16);
            assert!(r.all_completed, "{kind:?} run did not complete");
        }
    }

    #[test]
    fn causality_holds_in_the_trace_log() {
        let r = run(SchedulerKind::Fifo, 6, 16);
        for job in r.jobs.values() {
            let id = job.spec.id;
            let arrive = r.trace_log.first("job", id.0).unwrap().at;
            let start = job.first_start.unwrap();
            let done = job.completion.unwrap();
            assert!(arrive <= start, "{id}: started before arrival");
            assert!(start <= done, "{id}: completed before start");
            assert_eq!(arrive, job.arrival);
        }
    }

    #[test]
    fn queueing_plus_exec_equals_jct() {
        let r = run(SchedulerKind::Tiresias, 6, 16);
        for job in r.jobs.values() {
            let jct = job.jct().unwrap();
            let q = job.queueing_time(SimTime::from_secs(r.makespan));
            assert!(
                (q + job.exec_time - jct).abs() < 1e-6,
                "{}: q {q} + exec {} != jct {jct}",
                job.spec.name,
                job.exec_time
            );
        }
    }

    #[test]
    fn checkpoint_mechanism_pays_more_overhead_than_elastic() {
        let tiresias = run(SchedulerKind::Tiresias, 8, 16);
        let ones = run(SchedulerKind::Ones, 8, 16);
        // ONES re-configures far more often yet pays little per job
        // transition; the per-transition overhead must be far smaller.
        let ones_per = ones.total_overhead / ones.transitions.max(1) as f64;
        let tir_per = tiresias.total_overhead / tiresias.transitions.max(1) as f64;
        assert!(
            ones_per < tir_per,
            "elastic per-transition overhead {ones_per} not below checkpoint {tir_per}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = run(SchedulerKind::Ones, 5, 16);
        let b = run(SchedulerKind::Ones, 5, 16);
        assert_eq!(a.makespan, b.makespan);
        let jct =
            |r: &SimResult| -> Vec<f64> { r.jobs.values().map(|j| j.jct().unwrap()).collect() };
        assert_eq!(jct(&a), jct(&b));
    }

    #[test]
    fn stepped_run_with_injection_matches_batch() {
        let trace = small_trace(5, 7);
        let spec = ClusterSpec::longhorn_subset(16);
        let scheduler = SchedulerKind::Ones.build(&spec, &trace, &DetRng::seed(11));
        let batch = Simulation::new(
            PerfModel::new(spec),
            &trace,
            scheduler,
            SimConfig::default(),
        )
        .run();

        // Same jobs, but fed through inject() before stepping, the way the
        // daemon submits a pre-loaded trace while paused.
        let empty = Trace {
            config: trace.config,
            jobs: Vec::new(),
        };
        let scheduler = SchedulerKind::Ones.build(&spec, &trace, &DetRng::seed(11));
        let mut sim = Simulation::new(
            PerfModel::new(spec),
            &empty,
            scheduler,
            SimConfig::default(),
        );
        for job in &trace.jobs {
            sim.inject(job.clone()).unwrap();
        }
        assert!(sim.inject(trace.jobs[0].clone()).is_err(), "duplicate id");
        while sim.step() == StepOutcome::Progressed {}
        let (stepped, _) = sim.into_result();

        assert_eq!(batch.makespan, stepped.makespan);
        assert_eq!(batch.completed_jobs, stepped.completed_jobs);
        let jct =
            |r: &SimResult| -> Vec<f64> { r.jobs.values().map(|j| j.jct().unwrap()).collect() };
        assert_eq!(jct(&batch), jct(&stepped));
    }

    #[test]
    fn injection_after_idle_resumes_the_run() {
        let trace = small_trace(2, 7);
        let spec = ClusterSpec::longhorn_subset(16);
        let scheduler = SchedulerKind::Fifo.build(&spec, &trace, &DetRng::seed(11));
        let empty = Trace {
            config: trace.config,
            jobs: Vec::new(),
        };
        let mut sim = Simulation::new(
            PerfModel::new(spec),
            &empty,
            scheduler,
            SimConfig::default(),
        );
        sim.inject(trace.jobs[0].clone()).unwrap();
        while sim.step() == StepOutcome::Progressed {}
        assert_eq!(sim.step(), StepOutcome::Idle);
        let first_done = sim.now();

        // A job whose arrival is now in the simulated past is clamped
        // forward and still runs.
        let at = sim.inject(trace.jobs[1].clone()).unwrap();
        assert!(at >= first_done.as_secs());
        while sim.step() == StepOutcome::Progressed {}
        let (r, _) = sim.into_result();
        assert_eq!(r.completed_jobs, 2);
    }

    #[test]
    fn outcome_accounting_adds_up_on_clean_runs() {
        let r = run(SchedulerKind::Fifo, 8, 16);
        assert_eq!(r.completed_jobs, 8);
        assert_eq!(r.killed_jobs, 0);
        assert_eq!(r.incomplete_jobs, 0);
        assert_eq!(r.goodput(), 1.0);
    }

    #[test]
    fn killed_jobs_are_counted_not_averaged() {
        let trace = Trace::generate(TraceConfig {
            num_jobs: 12,
            arrival_rate: 1.0 / 20.0,
            seed: 9,
            kill_fraction: 0.5,
        });
        let spec = ClusterSpec::longhorn_subset(16);
        let scheduler = SchedulerKind::Fifo.build(&spec, &trace, &DetRng::seed(11));
        let r = Simulation::new(
            PerfModel::new(spec),
            &trace,
            scheduler,
            SimConfig::default(),
        )
        .run();
        assert_eq!(r.completed_jobs + r.killed_jobs + r.incomplete_jobs, 12);
        assert!(r.killed_jobs > 0, "seed 9 @ 50% kill produced no kills");
        assert!(r.goodput() < 1.0);
        for j in r.jobs.values().filter(|j| j.killed) {
            assert!(j.completion.is_some(), "killed job has an end time");
        }
    }

    #[test]
    fn truncated_runs_report_incomplete_jobs() {
        let trace = small_trace(8, 7);
        let spec = ClusterSpec::longhorn_subset(16);
        let scheduler = SchedulerKind::Fifo.build(&spec, &trace, &DetRng::seed(11));
        let r = Simulation::new(
            PerfModel::new(spec),
            &trace,
            scheduler,
            SimConfig {
                max_time: 5.0, // before most arrivals, let alone completions
                ..SimConfig::default()
            },
        )
        .run();
        assert!(!r.all_completed);
        assert!(r.incomplete_jobs > 0);
        assert_eq!(r.completed_jobs + r.killed_jobs + r.incomplete_jobs, 8);
        assert!(r.goodput() < 1.0);
    }
}
