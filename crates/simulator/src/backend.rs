//! The [`ClusterBackend`] trait: the execution substrate `ones-d` speaks
//! to.
//!
//! A backend owns a cluster — here the discrete-event simulator; on real
//! hardware it would wrap the Kubernetes/MPI executor of §3.3 — and
//! exposes exactly the operations the service layer needs: submit a job,
//! advance time, read job/cluster state, retune the scheduler. The daemon
//! is written entirely against this trait, so the simulator is one
//! pluggable implementation ([`SimBackend`]) of the same API a physical
//! cluster would sit behind.
//!
//! [`SimBackend::step`] converts raw engine progress into typed
//! [`BackendEvent`]s by diffing consecutive job-status snapshots — the
//! event stream served at `GET /v1/events` — so batch-size history is
//! observable without parsing trace-log strings.

use crate::engine::{SimConfig, Simulation, StepOutcome};
use ones_cluster::{ClusterSpec, NodeId};
use ones_dlperf::PerfModel;
use ones_schedcore::{JobPhase, JobStatus, SchedTuning, Scheduler};
use ones_workload::{JobId, JobSpec, Trace};
use std::collections::BTreeMap;

/// What a job did, as observed between two backend steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendEventKind {
    /// The job's arrival event was dispatched; it is now schedulable.
    Arrived,
    /// The job started (or resumed) running under this configuration.
    Started {
        /// Global batch size.
        batch: u32,
        /// GPUs granted.
        gpus: u32,
    },
    /// A running job was re-configured to a new batch/GPU assignment —
    /// the batch-size orchestration in action.
    Resized {
        /// New global batch size.
        batch: u32,
        /// New GPU count.
        gpus: u32,
    },
    /// The job lost its GPUs and went back to waiting.
    Preempted,
    /// The job finished a training epoch.
    EpochEnded {
        /// Total epochs completed so far.
        epochs_done: u32,
    },
    /// The job ran to convergence.
    Completed,
    /// The job ended abnormally (owner kill / crash).
    Killed,
    /// The submission was refused with a recorded reason (e.g. it raced a
    /// drain): the service never silently drops an accepted request.
    Rejected,
}

impl BackendEventKind {
    /// Stable wire name of this event kind.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BackendEventKind::Arrived => "arrived",
            BackendEventKind::Started { .. } => "started",
            BackendEventKind::Resized { .. } => "resized",
            BackendEventKind::Preempted => "preempted",
            BackendEventKind::EpochEnded { .. } => "epoch_ended",
            BackendEventKind::Completed => "completed",
            BackendEventKind::Killed => "killed",
            BackendEventKind::Rejected => "rejected",
        }
    }
}

/// One observed scheduling event, in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendEvent {
    /// Virtual time of the observation, seconds.
    pub vt_secs: f64,
    /// The job concerned.
    pub job: JobId,
    /// What happened.
    pub kind: BackendEventKind,
}

/// Whether the backend can make further progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendPhase {
    /// Events remain; keep stepping.
    Active,
    /// Nothing to do until a new job is submitted.
    Idle,
    /// A hard cap fired; the backend will not progress further.
    Capped,
}

/// Per-node GPU occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeOccupancy {
    /// Node index.
    pub node: u32,
    /// GPUs currently assigned to jobs.
    pub busy_gpus: u32,
    /// GPUs on the node.
    pub total_gpus: u32,
}

/// Cluster-wide occupancy snapshot (`GET /v1/cluster`).
#[derive(Debug, Clone, PartialEq)]
pub struct Occupancy {
    /// Total GPUs in the cluster.
    pub total_gpus: u32,
    /// GPUs currently assigned.
    pub busy_gpus: u32,
    /// Per-node breakdown, in node order.
    pub nodes: Vec<NodeOccupancy>,
    /// Jobs currently running.
    pub running_jobs: u32,
    /// Jobs waiting for service (arrived, unscheduled).
    pub waiting_jobs: u32,
    /// Jobs submitted but not yet arrived in virtual time.
    pub queued_jobs: u32,
}

/// The execution substrate a scheduler service drives.
///
/// `Send` so a service can own the backend on a dedicated thread.
pub trait ClusterBackend: Send {
    /// Scheduler name, for display.
    fn scheduler_name(&self) -> String;

    /// Current virtual time, seconds.
    fn now_secs(&self) -> f64;

    /// Submits a job. Arrival times in the past are clamped to now;
    /// returns the effective arrival time.
    ///
    /// # Errors
    /// Fails on an invalid spec or duplicate id.
    fn submit(&mut self, spec: JobSpec) -> Result<f64, String>;

    /// Advances the cluster by at most `max_events` scheduling events and
    /// returns the typed events observed plus the phase afterwards.
    fn step(&mut self, max_events: u64) -> (Vec<BackendEvent>, BackendPhase);

    /// Status of every known job (arrived and queued), keyed by id.
    fn job_statuses(&self) -> BTreeMap<JobId, JobStatus>;

    /// Node/GPU occupancy right now.
    fn occupancy(&self) -> Occupancy;

    /// Forwards a live tuning change to the scheduler; returns whether
    /// anything was applied.
    fn reconfigure(&mut self, tuning: &SchedTuning) -> bool;

    /// Snapshot of the backend's reconciliation state (actual schedule +
    /// in-flight scaling operations), for persistence by a long-running
    /// service. Backends without a reconciler return `None`.
    fn reconcile_state(&self) -> Option<ones_schedcore::Reconciler> {
        None
    }
}

/// Compact per-job shadow state used to diff consecutive snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Shadow {
    phase: JobPhase,
    batch: u32,
    gpus: u32,
    epochs: u32,
    killed: bool,
}

impl Shadow {
    fn of(status: &JobStatus) -> Self {
        Shadow {
            phase: status.phase,
            batch: status.current_batch,
            gpus: status.current_gpus,
            epochs: status.epochs_done,
            killed: status.killed,
        }
    }
}

/// The simulator as a [`ClusterBackend`].
pub struct SimBackend {
    sim: Simulation,
    spec: ClusterSpec,
    shadow: BTreeMap<JobId, Shadow>,
}

impl SimBackend {
    /// Wraps a simulation of `trace` (possibly empty) under `scheduler` on
    /// the cluster `spec`.
    #[must_use]
    pub fn new(
        spec: ClusterSpec,
        trace: &Trace,
        scheduler: Box<dyn Scheduler>,
        config: SimConfig,
    ) -> Self {
        SimBackend {
            sim: Simulation::new(PerfModel::new(spec), trace, scheduler, config),
            spec,
            shadow: BTreeMap::new(),
        }
    }

    /// Consumes the backend and produces the batch-run accounting.
    #[must_use]
    pub fn into_result(self) -> crate::engine::SimResult {
        self.sim.into_result().0
    }

    /// Diffs the current job statuses against the shadow map, appending
    /// one event per observable change and updating the shadow.
    fn diff_into(&mut self, out: &mut Vec<BackendEvent>) {
        let vt = self.sim.now().as_secs();
        let statuses = self.sim.arrived_job_statuses();
        for (id, status) in &statuses {
            let next = Shadow::of(status);
            let prev = self.shadow.get(id).copied();
            let mut push = |kind| {
                out.push(BackendEvent {
                    vt_secs: vt,
                    job: *id,
                    kind,
                });
            };
            if prev.is_none() {
                push(BackendEventKind::Arrived);
            }
            let prev = prev.unwrap_or(Shadow {
                phase: JobPhase::Waiting,
                batch: 0,
                gpus: 0,
                epochs: 0,
                killed: false,
            });
            if next == prev {
                continue;
            }
            if next.epochs > prev.epochs {
                push(BackendEventKind::EpochEnded {
                    epochs_done: next.epochs,
                });
            }
            match (prev.phase, next.phase) {
                (JobPhase::Waiting, JobPhase::Running) => push(BackendEventKind::Started {
                    batch: next.batch,
                    gpus: next.gpus,
                }),
                (JobPhase::Running, JobPhase::Waiting) => push(BackendEventKind::Preempted),
                (JobPhase::Running | JobPhase::Waiting, JobPhase::Completed) => {
                    if next.killed {
                        push(BackendEventKind::Killed);
                    } else {
                        push(BackendEventKind::Completed);
                    }
                }
                (JobPhase::Running, JobPhase::Running)
                    if next.batch != prev.batch || next.gpus != prev.gpus =>
                {
                    push(BackendEventKind::Resized {
                        batch: next.batch,
                        gpus: next.gpus,
                    });
                }
                _ => {}
            }
            self.shadow.insert(*id, next);
        }
        // Keep shadow entries for completed jobs (ids never recycle), but
        // make sure newly arrived unchanged jobs are recorded too.
        for (id, status) in &statuses {
            self.shadow.entry(*id).or_insert_with(|| Shadow::of(status));
        }
    }
}

impl ClusterBackend for SimBackend {
    fn scheduler_name(&self) -> String {
        self.sim.scheduler_name().to_string()
    }

    fn now_secs(&self) -> f64 {
        self.sim.now().as_secs()
    }

    fn submit(&mut self, spec: JobSpec) -> Result<f64, String> {
        self.sim.inject(spec)
    }

    fn step(&mut self, max_events: u64) -> (Vec<BackendEvent>, BackendPhase) {
        let mut events = Vec::new();
        let mut phase = BackendPhase::Active;
        for _ in 0..max_events {
            match self.sim.step() {
                StepOutcome::Progressed => self.diff_into(&mut events),
                StepOutcome::Idle => {
                    phase = BackendPhase::Idle;
                    break;
                }
                StepOutcome::Capped => {
                    phase = BackendPhase::Capped;
                    break;
                }
            }
        }
        (events, phase)
    }

    fn job_statuses(&self) -> BTreeMap<JobId, JobStatus> {
        self.sim.job_statuses()
    }

    fn occupancy(&self) -> Occupancy {
        let deployed = self.sim.deployed();
        let mut nodes: Vec<NodeOccupancy> = (0..self.spec.nodes)
            .map(|n| NodeOccupancy {
                node: n,
                busy_gpus: 0,
                total_gpus: self.spec.gpus_per_node,
            })
            .collect();
        let mut busy = 0u32;
        for (gpu, slot) in deployed.slots().iter().enumerate() {
            if slot.is_some() {
                busy += 1;
                let NodeId(node) = self.spec.node_of(ones_cluster::GpuId(gpu as u32));
                nodes[node as usize].busy_gpus += 1;
            }
        }
        let (mut running, mut waiting) = (0u32, 0u32);
        for status in self.sim.arrived_job_statuses().values() {
            match status.phase {
                JobPhase::Running => running += 1,
                JobPhase::Waiting => waiting += 1,
                JobPhase::Completed => {}
            }
        }
        Occupancy {
            total_gpus: self.spec.total_gpus(),
            busy_gpus: busy,
            nodes,
            running_jobs: running,
            waiting_jobs: waiting,
            queued_jobs: self.sim.queued_count() as u32,
        }
    }

    fn reconfigure(&mut self, tuning: &SchedTuning) -> bool {
        self.sim.reconfigure_scheduler(tuning)
    }

    fn reconcile_state(&self) -> Option<ones_schedcore::Reconciler> {
        Some(self.sim.reconciler().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SchedulerKind;
    use ones_simcore::DetRng;
    use ones_workload::TraceConfig;

    fn backend(kind: SchedulerKind, jobs: usize) -> (SimBackend, Trace) {
        let trace = Trace::generate(TraceConfig {
            num_jobs: jobs,
            arrival_rate: 1.0 / 20.0,
            seed: 7,
            kill_fraction: 0.0,
        });
        let spec = ClusterSpec::longhorn_subset(16);
        let scheduler = kind.build(&spec, &trace, &DetRng::seed(11));
        let empty = Trace {
            config: trace.config,
            jobs: Vec::new(),
        };
        (
            SimBackend::new(spec, &empty, scheduler, SimConfig::default()),
            trace,
        )
    }

    #[test]
    fn event_stream_tells_every_job_lifecycle() {
        let (mut b, trace) = backend(SchedulerKind::Ones, 5);
        for job in &trace.jobs {
            b.submit(job.clone()).unwrap();
        }
        let mut events = Vec::new();
        loop {
            let (batch, phase) = b.step(256);
            events.extend(batch);
            if phase != BackendPhase::Active {
                break;
            }
        }
        let count = |k: &str| events.iter().filter(|e| e.kind.name() == k).count();
        assert_eq!(count("arrived"), 5);
        assert_eq!(count("completed"), 5);
        assert!(count("started") >= 5, "every job must start at least once");
        assert!(count("epoch_ended") > 0);
        // Virtual time is monotonic along the stream.
        assert!(events.windows(2).all(|w| w[0].vt_secs <= w[1].vt_secs));
        // ONES resizes batches: the stream must show it.
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, BackendEventKind::Resized { .. })),
            "ONES produced no resize events"
        );
        let statuses = b.job_statuses();
        assert_eq!(statuses.len(), 5);
        assert!(statuses.values().all(|s| s.is_completed()));
    }

    #[test]
    fn occupancy_tracks_deployment() {
        let (mut b, trace) = backend(SchedulerKind::Fifo, 4);
        let idle = b.occupancy();
        assert_eq!(idle.total_gpus, 16);
        assert_eq!(idle.busy_gpus, 0);
        assert_eq!(idle.nodes.iter().map(|n| n.total_gpus).sum::<u32>(), 16);
        for job in &trace.jobs {
            b.submit(job.clone()).unwrap();
        }
        assert_eq!(b.occupancy().queued_jobs, 4);
        // Step until something is running, then check occupancy coheres.
        let mut saw_busy = false;
        loop {
            let (_, phase) = b.step(64);
            let occ = b.occupancy();
            assert_eq!(
                occ.nodes.iter().map(|n| n.busy_gpus).sum::<u32>(),
                occ.busy_gpus
            );
            assert!(occ.busy_gpus <= occ.total_gpus);
            if occ.running_jobs > 0 {
                saw_busy = true;
                assert!(occ.busy_gpus > 0, "running jobs but no busy GPUs");
            }
            if phase != BackendPhase::Active {
                break;
            }
        }
        assert!(saw_busy, "run finished without ever running a job");
        assert_eq!(b.occupancy().busy_gpus, 0);
    }

    #[test]
    fn backend_run_matches_batch_outcomes() {
        let (mut b, trace) = backend(SchedulerKind::Ones, 6);
        for job in &trace.jobs {
            b.submit(job.clone()).unwrap();
        }
        while b.step(1024).1 == BackendPhase::Active {}
        let service = b.into_result();

        let spec = ClusterSpec::longhorn_subset(16);
        let scheduler = SchedulerKind::Ones.build(&spec, &trace, &DetRng::seed(11));
        let batch = Simulation::new(
            PerfModel::new(spec),
            &trace,
            scheduler,
            SimConfig::default(),
        )
        .run();
        assert_eq!(service.makespan, batch.makespan);
        assert_eq!(service.completed_jobs, batch.completed_jobs);
    }
}
