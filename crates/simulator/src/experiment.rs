//! Experiment harness: named scheduler construction, single runs, and
//! rayon-parallel sweeps — the backbone of every figure-regenerating bench
//! binary.

use crate::engine::{SimConfig, Simulation};
use crate::metrics::JobMetrics;
use ones_baselines::{DrlScheduler, Fifo, Gandiva, Optimus, Slaq, SrtfOracle, Tiresias};
use ones_cluster::ClusterSpec;
use ones_dlperf::PerfModel;
use ones_sched::{OnesConfig, OnesScheduler};
use ones_schedcore::Scheduler;
use ones_simcore::DetRng;
use ones_workload::{Trace, TraceConfig};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The schedulers an experiment can run (§4.1 baselines + references).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// The paper's contribution.
    Ones,
    /// Chic-style policy-gradient baseline.
    Drl,
    /// Discretised 2D-LAS MLFQ baseline.
    Tiresias,
    /// Periodic marginal-gain baseline.
    Optimus,
    /// FIFO gang reference.
    Fifo,
    /// Ground-truth SRTF reference (ablation only).
    SrtfOracle,
    /// Gandiva-style time-slicing round-robin (extension baseline from §5
    /// related work).
    Gandiva,
    /// SLAQ-style quality-driven greedy scheduler (extension baseline from
    /// §5 related work).
    Slaq,
    /// Ablation: ONES with a single-candidate population and no
    /// crossover/mutation — a greedy hill-climber over the same operations.
    OnesGreedy,
    /// Ablation: ONES with the progress predictor disabled (cold-start
    /// prior only).
    OnesNoPredictor,
    /// Ablation: ONES without the *reorder* locality operation.
    OnesNoReorder,
    /// Ablation: ONES executing re-configurations via checkpoint restart
    /// instead of elastic NCCL scaling.
    OnesCheckpoint,
}

impl SchedulerKind {
    /// The four schedulers of Figure 15.
    pub const PAPER: [SchedulerKind; 4] = [
        SchedulerKind::Ones,
        SchedulerKind::Drl,
        SchedulerKind::Tiresias,
        SchedulerKind::Optimus,
    ];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Ones => "ONES",
            SchedulerKind::Drl => "DRL",
            SchedulerKind::Tiresias => "Tiresias",
            SchedulerKind::Optimus => "Optimus",
            SchedulerKind::Fifo => "FIFO",
            SchedulerKind::SrtfOracle => "SRTF-oracle",
            SchedulerKind::Gandiva => "Gandiva",
            SchedulerKind::Slaq => "SLAQ",
            SchedulerKind::OnesGreedy => "ONES-greedy",
            SchedulerKind::OnesNoPredictor => "ONES-noPred",
            SchedulerKind::OnesNoReorder => "ONES-noReorder",
            SchedulerKind::OnesCheckpoint => "ONES-ckpt",
        }
    }

    /// The ONES ablation variants (plus ONES itself, first).
    pub const ABLATIONS: [SchedulerKind; 5] = [
        SchedulerKind::Ones,
        SchedulerKind::OnesGreedy,
        SchedulerKind::OnesNoPredictor,
        SchedulerKind::OnesNoReorder,
        SchedulerKind::OnesCheckpoint,
    ];

    /// Builds the scheduler for a cluster and trace (λ parameterises the
    /// ONES scale-down policy; the DRL agent's RNG forks from `rng`).
    #[must_use]
    pub fn build(self, spec: &ClusterSpec, trace: &Trace, rng: &DetRng) -> Box<dyn Scheduler> {
        let lambda = trace.config.arrival_rate;
        let base = OnesConfig::for_cluster(spec.total_gpus(), lambda);
        match self {
            SchedulerKind::Ones => Box::new(OnesScheduler::new(base, rng)),
            SchedulerKind::Drl => Box::new(DrlScheduler::new(Default::default(), rng)),
            SchedulerKind::Tiresias => Box::new(Tiresias::new()),
            SchedulerKind::Optimus => Box::new(Optimus::new()),
            SchedulerKind::Fifo => Box::new(Fifo::new()),
            SchedulerKind::SrtfOracle => Box::new(SrtfOracle::new()),
            SchedulerKind::Gandiva => Box::new(Gandiva::new()),
            SchedulerKind::Slaq => Box::new(Slaq::new()),
            SchedulerKind::OnesGreedy => {
                let mut cfg = base;
                cfg.evo.population = 1;
                cfg.evo.crossover_pairs = 0;
                cfg.evo.mutation_rate = 0.0;
                Box::new(OnesScheduler::new(cfg, rng))
            }
            SchedulerKind::OnesNoPredictor => {
                let mut cfg = base;
                cfg.use_predictor = false;
                Box::new(OnesScheduler::new(cfg, rng))
            }
            SchedulerKind::OnesNoReorder => {
                let mut cfg = base;
                cfg.evo.reorder = false;
                Box::new(OnesScheduler::new(cfg, rng))
            }
            SchedulerKind::OnesCheckpoint => {
                let mut cfg = base;
                cfg.mechanism = ones_schedcore::ScalingMechanism::CheckpointRestart;
                Box::new(OnesScheduler::new(cfg, rng))
            }
        }
    }
}

/// One experiment: a scheduler on a trace on a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Cluster size in GPUs (whole Longhorn nodes).
    pub gpus: u32,
    /// Trace parameters.
    pub trace: TraceConfig,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// Scheduler-internal randomness seed.
    pub sched_seed: u64,
    /// Episodes of pre-training for the DRL agent (ignored by others).
    pub drl_pretrain_episodes: usize,
}

impl ExperimentConfig {
    /// The paper's headline setup: 64 GPUs, default trace.
    #[must_use]
    pub fn paper(scheduler: SchedulerKind) -> Self {
        ExperimentConfig {
            gpus: 64,
            trace: TraceConfig::default(),
            scheduler,
            sched_seed: 1,
            drl_pretrain_episodes: 3,
        }
    }
}

/// Result of one experiment.
#[derive(Debug)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Per-job metrics.
    pub metrics: JobMetrics,
    /// Virtual makespan, seconds.
    pub makespan: f64,
    /// Schedule deployments executed.
    pub deployments: u64,
    /// Total re-configuration overhead charged, seconds.
    pub total_overhead: f64,
    /// Mean cluster GPU utilisation over the run, in [0, 1].
    pub gpu_utilization: f64,
    /// Scheduler-internal hot-loop counters, when the scheduler keeps any.
    pub scheduler_perf: Option<ones_schedcore::SchedulerPerfCounters>,
}

/// Runs one experiment to completion.
///
/// The DRL agent is pre-trained on `drl_pretrain_episodes` sibling traces
/// (different seeds) before the measured run, standing in for Chic's
/// offline trace training.
///
/// # Panics
/// Panics if the simulation stalls or hits its caps — every Table 2 trace
/// must complete under every scheduler.
#[must_use]
pub fn run_experiment(config: ExperimentConfig) -> ExperimentResult {
    let spec = ClusterSpec::longhorn_subset(config.gpus);
    let rng = DetRng::seed(config.sched_seed);
    let trace = Trace::generate(config.trace);
    let mut scheduler = config.scheduler.build(&spec, &trace, &rng);

    if config.scheduler == SchedulerKind::Drl {
        for episode in 0..config.drl_pretrain_episodes {
            let train_trace = Trace::generate(TraceConfig {
                seed: config
                    .trace
                    .seed
                    .wrapping_add(1000)
                    .wrapping_add(episode as u64),
                ..config.trace
            });
            let sim = Simulation::new(
                PerfModel::new(spec),
                &train_trace,
                scheduler,
                SimConfig::default(),
            );
            scheduler = run_and_recover(sim);
        }
    }

    let sim = Simulation::new(
        PerfModel::new(spec),
        &trace,
        scheduler,
        SimConfig::default(),
    );
    let result = sim.run();
    assert!(
        result.all_completed,
        "{} stalled on trace seed {} at {} GPUs",
        config.scheduler.name(),
        config.trace.seed,
        config.gpus
    );
    ExperimentResult {
        config,
        metrics: JobMetrics::from_result(&result),
        makespan: result.makespan,
        deployments: result.deployments,
        total_overhead: result.total_overhead,
        gpu_utilization: result.gpu_utilization(),
        scheduler_perf: result.scheduler_perf,
    }
}

/// Runs a pre-training episode, recovering the scheduler afterwards.
fn run_and_recover(sim: Simulation) -> Box<dyn Scheduler> {
    sim.run_returning_scheduler().1
}

/// Runs a set of experiments in parallel (one rayon task per run — the
/// sweep axis of Figures 15 and 17).
#[must_use]
pub fn run_sweep(configs: &[ExperimentConfig]) -> Vec<ExperimentResult> {
    configs.par_iter().map(|&c| run_experiment(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(scheduler: SchedulerKind) -> ExperimentConfig {
        ExperimentConfig {
            gpus: 16,
            trace: TraceConfig {
                num_jobs: 6,
                arrival_rate: 1.0 / 15.0,
                seed: 3,
                kill_fraction: 0.0,
            },
            scheduler,
            sched_seed: 2,
            drl_pretrain_episodes: 1,
        }
    }

    #[test]
    fn every_scheduler_finishes_the_tiny_trace() {
        for kind in [
            SchedulerKind::Ones,
            SchedulerKind::Drl,
            SchedulerKind::Tiresias,
            SchedulerKind::Optimus,
            SchedulerKind::Fifo,
            SchedulerKind::SrtfOracle,
            SchedulerKind::Gandiva,
            SchedulerKind::Slaq,
        ] {
            let r = run_experiment(tiny(kind));
            assert_eq!(r.metrics.jct.len(), 6, "{}", kind.name());
            assert!(r.makespan > 0.0);
        }
    }

    #[test]
    fn sweep_matches_individual_runs() {
        let configs = vec![tiny(SchedulerKind::Fifo), tiny(SchedulerKind::Tiresias)];
        let sweep = run_sweep(&configs);
        let solo = run_experiment(tiny(SchedulerKind::Fifo));
        assert_eq!(sweep[0].metrics.jct, solo.metrics.jct);
        assert_eq!(sweep.len(), 2);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SchedulerKind::Ones.name(), "ONES");
        assert_eq!(SchedulerKind::PAPER.len(), 4);
        assert_eq!(SchedulerKind::ABLATIONS.len(), 5);
        assert_eq!(SchedulerKind::Gandiva.name(), "Gandiva");
        assert_eq!(SchedulerKind::Slaq.name(), "SLAQ");
    }

    #[test]
    fn ablation_variants_finish_the_tiny_trace() {
        for kind in SchedulerKind::ABLATIONS {
            let r = run_experiment(tiny(kind));
            assert_eq!(r.metrics.jct.len(), 6, "{}", kind.name());
        }
    }

    #[test]
    fn gpu_utilization_is_normalised() {
        let r = run_experiment(tiny(SchedulerKind::Fifo));
        assert!(
            (0.0..=1.0).contains(&r.gpu_utilization),
            "{}",
            r.gpu_utilization
        );
        assert!(r.gpu_utilization > 0.0);
    }
}
