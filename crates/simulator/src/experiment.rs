//! Experiment harness: named scheduler construction, single runs, and
//! rayon-parallel sweeps — the backbone of every figure-regenerating bench
//! binary.

use crate::engine::{SimConfig, Simulation};
use crate::metrics::JobMetrics;
use ones_baselines::{DrlScheduler, Fifo, Gandiva, Optimus, Slaq, SrtfOracle, Tiresias};
use ones_cluster::ClusterSpec;
use ones_dlperf::PerfModel;
use ones_sched::{OnesConfig, OnesScheduler};
use ones_schedcore::Scheduler;
use ones_simcore::DetRng;
use ones_workload::{ReplayConfig, Trace, TraceConfig};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Where an experiment's jobs come from.
///
/// The paper evaluates on a synthetic Table 2 trace; real clusters look
/// different (Philly/Helios-style diurnal + bursty arrivals, heavy-tailed
/// durations, ~30 % abnormal terminations), and a result that only holds
/// on the synthetic mix is fragile. Each variant materialises into the
/// same [`Trace`], so every scheduler, figure and bench runs unchanged on
/// any source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceSource {
    /// The paper's Table 2 generator: Poisson arrivals, mid-size-heavy mix.
    Table2(TraceConfig),
    /// Philly-style replay mixture ([`ReplayConfig`]): MMPP arrivals,
    /// log-normal durations, single-GPU-heavy requests, abnormal kills.
    Replay(ReplayConfig),
    /// A trace file on disk: `.csv` uses the documented ingestion schema,
    /// anything else is parsed as JSON (see `EXPERIMENTS.md`).
    File(String),
}

impl TraceSource {
    /// Builds the concrete job trace.
    ///
    /// # Errors
    /// Returns a message naming the offending row/job when a [`File`]
    /// source is malformed. Generated sources cannot fail.
    ///
    /// [`File`]: TraceSource::File
    pub fn materialise(&self) -> Result<Trace, String> {
        match self {
            TraceSource::Table2(config) => Ok(Trace::generate(*config)),
            TraceSource::Replay(config) => Ok(config.generate()),
            TraceSource::File(path) => Trace::load(std::path::Path::new(path))
                .map_err(|e| format!("cannot load trace {path}: {e}")),
        }
    }

    /// Short label for reports and error messages.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TraceSource::Table2(_) => "table2",
            TraceSource::Replay(_) => "philly",
            TraceSource::File(_) => "file",
        }
    }

    /// The generator seed, if this source has one (files do not).
    #[must_use]
    pub fn seed(&self) -> Option<u64> {
        match self {
            TraceSource::Table2(c) => Some(c.seed),
            TraceSource::Replay(c) => Some(c.seed),
            TraceSource::File(_) => None,
        }
    }

    /// The configured abnormal-termination fraction, if this source has
    /// one (files carry kills implicitly in their rows).
    #[must_use]
    pub fn kill_fraction(&self) -> Option<f64> {
        match self {
            TraceSource::Table2(c) => Some(c.kill_fraction),
            TraceSource::Replay(c) => Some(c.kill_fraction),
            TraceSource::File(_) => None,
        }
    }

    /// A sibling source for DRL pre-training episode `offset`: same shape,
    /// different seed. File sources have no seed to vary, so the agent
    /// pre-trains on the file itself.
    #[must_use]
    fn pretrain_sibling(&self, offset: u64) -> TraceSource {
        match self {
            TraceSource::Table2(c) => TraceSource::Table2(TraceConfig {
                seed: c.seed.wrapping_add(1000).wrapping_add(offset),
                ..*c
            }),
            TraceSource::Replay(c) => TraceSource::Replay(ReplayConfig {
                seed: c.seed.wrapping_add(1000).wrapping_add(offset),
                ..*c
            }),
            TraceSource::File(path) => TraceSource::File(path.clone()),
        }
    }
}

/// The schedulers an experiment can run (§4.1 baselines + references).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// The paper's contribution.
    Ones,
    /// Chic-style policy-gradient baseline.
    Drl,
    /// Discretised 2D-LAS MLFQ baseline.
    Tiresias,
    /// Periodic marginal-gain baseline.
    Optimus,
    /// FIFO gang reference.
    Fifo,
    /// Ground-truth SRTF reference (ablation only).
    SrtfOracle,
    /// Gandiva-style time-slicing round-robin (extension baseline from §5
    /// related work).
    Gandiva,
    /// SLAQ-style quality-driven greedy scheduler (extension baseline from
    /// §5 related work).
    Slaq,
    /// Ablation: ONES with a single-candidate population and no
    /// crossover/mutation — a greedy hill-climber over the same operations.
    OnesGreedy,
    /// Ablation: ONES with the progress predictor disabled (cold-start
    /// prior only).
    OnesNoPredictor,
    /// Ablation: ONES without the *reorder* locality operation.
    OnesNoReorder,
    /// Ablation: ONES executing re-configurations via checkpoint restart
    /// instead of elastic NCCL scaling.
    OnesCheckpoint,
}

impl SchedulerKind {
    /// The four schedulers of Figure 15.
    pub const PAPER: [SchedulerKind; 4] = [
        SchedulerKind::Ones,
        SchedulerKind::Drl,
        SchedulerKind::Tiresias,
        SchedulerKind::Optimus,
    ];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Ones => "ONES",
            SchedulerKind::Drl => "DRL",
            SchedulerKind::Tiresias => "Tiresias",
            SchedulerKind::Optimus => "Optimus",
            SchedulerKind::Fifo => "FIFO",
            SchedulerKind::SrtfOracle => "SRTF-oracle",
            SchedulerKind::Gandiva => "Gandiva",
            SchedulerKind::Slaq => "SLAQ",
            SchedulerKind::OnesGreedy => "ONES-greedy",
            SchedulerKind::OnesNoPredictor => "ONES-noPred",
            SchedulerKind::OnesNoReorder => "ONES-noReorder",
            SchedulerKind::OnesCheckpoint => "ONES-ckpt",
        }
    }

    /// The ONES ablation variants (plus ONES itself, first).
    pub const ABLATIONS: [SchedulerKind; 5] = [
        SchedulerKind::Ones,
        SchedulerKind::OnesGreedy,
        SchedulerKind::OnesNoPredictor,
        SchedulerKind::OnesNoReorder,
        SchedulerKind::OnesCheckpoint,
    ];

    /// Builds the scheduler for a cluster and trace (λ parameterises the
    /// ONES scale-down policy; the DRL agent's RNG forks from `rng`).
    #[must_use]
    pub fn build(self, spec: &ClusterSpec, trace: &Trace, rng: &DetRng) -> Box<dyn Scheduler> {
        let lambda = trace.config.arrival_rate;
        let base = OnesConfig::for_cluster(spec.total_gpus(), lambda);
        match self {
            SchedulerKind::Ones => Box::new(OnesScheduler::new(base, rng)),
            SchedulerKind::Drl => Box::new(DrlScheduler::new(Default::default(), rng)),
            SchedulerKind::Tiresias => Box::new(Tiresias::new()),
            SchedulerKind::Optimus => Box::new(Optimus::new()),
            SchedulerKind::Fifo => Box::new(Fifo::new()),
            SchedulerKind::SrtfOracle => Box::new(SrtfOracle::new()),
            SchedulerKind::Gandiva => Box::new(Gandiva::new()),
            SchedulerKind::Slaq => Box::new(Slaq::new()),
            SchedulerKind::OnesGreedy => {
                let mut cfg = base;
                cfg.evo.population = 1;
                cfg.evo.crossover_pairs = 0;
                cfg.evo.mutation_rate = 0.0;
                Box::new(OnesScheduler::new(cfg, rng))
            }
            SchedulerKind::OnesNoPredictor => {
                let mut cfg = base;
                cfg.use_predictor = false;
                Box::new(OnesScheduler::new(cfg, rng))
            }
            SchedulerKind::OnesNoReorder => {
                let mut cfg = base;
                cfg.evo.reorder = false;
                Box::new(OnesScheduler::new(cfg, rng))
            }
            SchedulerKind::OnesCheckpoint => {
                let mut cfg = base;
                cfg.mechanism = ones_schedcore::ScalingMechanism::CheckpointRestart;
                Box::new(OnesScheduler::new(cfg, rng))
            }
        }
    }
}

/// One experiment: a scheduler on a trace on a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Cluster size in GPUs (whole Longhorn nodes).
    pub gpus: u32,
    /// Where the jobs come from.
    pub source: TraceSource,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// Scheduler-internal randomness seed.
    pub sched_seed: u64,
    /// Episodes of pre-training for the DRL agent (ignored by others).
    pub drl_pretrain_episodes: usize,
}

impl ExperimentConfig {
    /// The paper's headline setup: 64 GPUs, default Table 2 trace.
    #[must_use]
    pub fn paper(scheduler: SchedulerKind) -> Self {
        ExperimentConfig {
            gpus: 64,
            source: TraceSource::Table2(TraceConfig::default()),
            scheduler,
            sched_seed: 1,
            drl_pretrain_episodes: 3,
        }
    }
}

/// Result of one experiment.
#[derive(Debug)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Per-job metrics.
    pub metrics: JobMetrics,
    /// Virtual makespan, seconds.
    pub makespan: f64,
    /// Schedule deployments executed.
    pub deployments: u64,
    /// Total re-configuration overhead charged, seconds.
    pub total_overhead: f64,
    /// Mean cluster GPU utilisation over the run, in [0, 1].
    pub gpu_utilization: f64,
    /// Jobs that ran to normal completion.
    pub completed_jobs: usize,
    /// Jobs that ended abnormally (user kill / failure).
    pub killed_jobs: usize,
    /// Jobs the run left unfinished (stall or time/event cap).
    pub incomplete_jobs: usize,
    /// Fraction of jobs that completed normally, in [0, 1].
    pub goodput: f64,
    /// Whether every job reached a terminal state before the caps.
    pub all_completed: bool,
    /// Scheduler-internal hot-loop counters, when the scheduler keeps any.
    pub scheduler_perf: Option<ones_schedcore::SchedulerPerfCounters>,
}

/// Runs one experiment to completion.
///
/// The DRL agent is pre-trained on `drl_pretrain_episodes` sibling traces
/// (different seeds) before the measured run, standing in for Chic's
/// offline trace training.
///
/// Metrics aggregate over *normally completed* jobs only; killed and
/// unfinished jobs are counted in [`ExperimentResult`], never averaged in.
/// Truncated runs (routine under heavy-tailed replay traces) therefore
/// report partial metrics instead of panicking — check
/// [`ExperimentResult::all_completed`] when a figure requires full runs.
///
/// # Panics
/// Panics if a [`TraceSource::File`] source cannot be loaded.
#[must_use]
pub fn run_experiment(config: ExperimentConfig) -> ExperimentResult {
    let spec = ClusterSpec::longhorn_subset(config.gpus);
    let rng = DetRng::seed(config.sched_seed);
    let trace = config.source.materialise().unwrap_or_else(|e| {
        panic!(
            "{} experiment on a {} source: {e}",
            config.scheduler.name(),
            config.source.label()
        )
    });
    let mut scheduler = config.scheduler.build(&spec, &trace, &rng);

    if config.scheduler == SchedulerKind::Drl {
        for episode in 0..config.drl_pretrain_episodes {
            let train_trace = config
                .source
                .pretrain_sibling(episode as u64)
                .materialise()
                .expect("sibling of a source that already materialised");
            let sim = Simulation::new(
                PerfModel::new(spec),
                &train_trace,
                scheduler,
                SimConfig::default(),
            );
            scheduler = run_and_recover(sim);
        }
    }

    let sim = Simulation::new(
        PerfModel::new(spec),
        &trace,
        scheduler,
        SimConfig::default(),
    );
    let result = sim.run();
    if result.incomplete_jobs > 0 {
        eprintln!(
            "warning: {} left {} job(s) unfinished on the {} trace at {} GPUs",
            config.scheduler.name(),
            result.incomplete_jobs,
            config.source.label(),
            config.gpus
        );
    }
    ExperimentResult {
        metrics: JobMetrics::completed_only(&result),
        makespan: result.makespan,
        deployments: result.deployments,
        total_overhead: result.total_overhead,
        gpu_utilization: result.gpu_utilization(),
        completed_jobs: result.completed_jobs,
        killed_jobs: result.killed_jobs,
        incomplete_jobs: result.incomplete_jobs,
        goodput: result.goodput(),
        all_completed: result.all_completed,
        scheduler_perf: result.scheduler_perf,
        config,
    }
}

/// Runs a pre-training episode, recovering the scheduler afterwards.
fn run_and_recover(sim: Simulation) -> Box<dyn Scheduler> {
    sim.run_returning_scheduler().1
}

/// Runs a set of experiments in parallel (one rayon task per run — the
/// sweep axis of Figures 15 and 17).
#[must_use]
pub fn run_sweep(configs: &[ExperimentConfig]) -> Vec<ExperimentResult> {
    configs
        .par_iter()
        .map(|c| run_experiment(c.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(scheduler: SchedulerKind) -> ExperimentConfig {
        ExperimentConfig {
            gpus: 16,
            source: TraceSource::Table2(TraceConfig {
                num_jobs: 6,
                arrival_rate: 1.0 / 15.0,
                seed: 3,
                kill_fraction: 0.0,
            }),
            scheduler,
            sched_seed: 2,
            drl_pretrain_episodes: 1,
        }
    }

    #[test]
    fn every_scheduler_finishes_the_tiny_trace() {
        for kind in [
            SchedulerKind::Ones,
            SchedulerKind::Drl,
            SchedulerKind::Tiresias,
            SchedulerKind::Optimus,
            SchedulerKind::Fifo,
            SchedulerKind::SrtfOracle,
            SchedulerKind::Gandiva,
            SchedulerKind::Slaq,
        ] {
            let r = run_experiment(tiny(kind));
            assert_eq!(r.metrics.jct.len(), 6, "{}", kind.name());
            assert!(r.makespan > 0.0);
        }
    }

    #[test]
    fn sweep_matches_individual_runs() {
        let configs = vec![tiny(SchedulerKind::Fifo), tiny(SchedulerKind::Tiresias)];
        let sweep = run_sweep(&configs);
        let solo = run_experiment(tiny(SchedulerKind::Fifo));
        assert_eq!(sweep[0].metrics.jct, solo.metrics.jct);
        assert_eq!(sweep.len(), 2);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SchedulerKind::Ones.name(), "ONES");
        assert_eq!(SchedulerKind::PAPER.len(), 4);
        assert_eq!(SchedulerKind::ABLATIONS.len(), 5);
        assert_eq!(SchedulerKind::Gandiva.name(), "Gandiva");
        assert_eq!(SchedulerKind::Slaq.name(), "SLAQ");
    }

    #[test]
    fn ablation_variants_finish_the_tiny_trace() {
        for kind in SchedulerKind::ABLATIONS {
            let r = run_experiment(tiny(kind));
            assert_eq!(r.metrics.jct.len(), 6, "{}", kind.name());
        }
    }

    #[test]
    fn clean_runs_report_full_goodput() {
        let r = run_experiment(tiny(SchedulerKind::Fifo));
        assert!(r.all_completed);
        assert_eq!(r.completed_jobs, 6);
        assert_eq!(r.killed_jobs, 0);
        assert_eq!(r.incomplete_jobs, 0);
        assert_eq!(r.goodput, 1.0);
    }

    #[test]
    fn replay_source_runs_end_to_end_with_kills() {
        let replay = ReplayConfig {
            num_jobs: 12,
            base_rate: 1.0 / 10.0,
            seed: 7,
            kill_fraction: 0.3,
            ..ReplayConfig::default()
        };
        let r = run_experiment(ExperimentConfig {
            gpus: 16,
            source: TraceSource::Replay(replay),
            scheduler: SchedulerKind::Fifo,
            sched_seed: 2,
            drl_pretrain_episodes: 0,
        });
        assert_eq!(r.completed_jobs + r.killed_jobs + r.incomplete_jobs, 12);
        assert!(r.killed_jobs > 0, "philly replay should include kills");
        assert_eq!(r.metrics.jct.len(), r.completed_jobs);
        assert!(r.goodput > 0.0 && r.goodput < 1.0);
    }

    #[test]
    fn file_source_reproduces_the_generated_trace() {
        let config = TraceConfig {
            num_jobs: 6,
            arrival_rate: 1.0 / 15.0,
            seed: 3,
            kill_fraction: 0.0,
        };
        let path = std::env::temp_dir().join("ones_experiment_file_source.json");
        Trace::generate(config)
            .save(&path)
            .expect("writable temp dir");
        let from_file = run_experiment(ExperimentConfig {
            source: TraceSource::File(path.to_string_lossy().into_owned()),
            ..tiny(SchedulerKind::Fifo)
        });
        let from_generator = run_experiment(tiny(SchedulerKind::Fifo));
        assert_eq!(from_file.metrics.jct, from_generator.metrics.jct);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "cannot load trace")]
    fn missing_trace_file_panics_with_context() {
        let _ = run_experiment(ExperimentConfig {
            source: TraceSource::File("/nonexistent/trace.json".into()),
            ..tiny(SchedulerKind::Fifo)
        });
    }

    #[test]
    fn source_accessors_expose_seed_and_kill_fraction() {
        let table2 = TraceSource::Table2(TraceConfig {
            num_jobs: 4,
            arrival_rate: 0.1,
            seed: 11,
            kill_fraction: 0.25,
        });
        assert_eq!(table2.seed(), Some(11));
        assert_eq!(table2.kill_fraction(), Some(0.25));
        assert_eq!(table2.label(), "table2");
        let replay = TraceSource::Replay(ReplayConfig::default());
        assert_eq!(replay.seed(), Some(ReplayConfig::default().seed));
        assert_eq!(replay.label(), "philly");
        let file = TraceSource::File("x.csv".into());
        assert_eq!(file.seed(), None);
        assert_eq!(file.kill_fraction(), None);
        assert_eq!(file.label(), "file");
    }

    #[test]
    fn gpu_utilization_is_normalised() {
        let r = run_experiment(tiny(SchedulerKind::Fifo));
        assert!(
            (0.0..=1.0).contains(&r.gpu_utilization),
            "{}",
            r.gpu_utilization
        );
        assert!(r.gpu_utilization > 0.0);
    }
}
