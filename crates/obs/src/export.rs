//! Sinks: Chrome-trace-format JSON (Perfetto / `chrome://tracing`) and a
//! JSONL metrics snapshot.
//!
//! Both formats are hand-rolled so this crate stays zero-dependency; the
//! round-trip tests in `tests/roundtrip.rs` parse them back with the
//! serde_json shim to keep the output honest.

use std::fmt::Write as _;
use std::path::Path;

use crate::metrics::{registry_snapshot, MetricValue};
use crate::span::{spans_snapshot, ArgValue, Clock, SpanEvent};

/// Failure to write a sink file.
#[derive(Debug)]
pub struct ExportError {
    /// Destination that failed.
    pub path: std::path::PathBuf,
    /// Underlying io error.
    pub source: std::io::Error,
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "failed to write {}: {}",
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an f64 as a JSON number (non-finite values, which JSON cannot
/// represent, become 0).
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

fn push_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, key);
        out.push(':');
        match value {
            ArgValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::F64(x) => push_json_f64(out, *x),
            ArgValue::Str(s) => push_json_str(out, s),
        }
    }
    out.push('}');
}

pub(crate) fn push_trace_event(out: &mut String, event: &SpanEvent) {
    let pid = match event.clock {
        Clock::Wall => 0,
        Clock::Virtual => 1,
    };
    out.push_str("{\"name\":");
    push_json_str(out, event.name);
    out.push_str(",\"cat\":");
    push_json_str(out, event.cat);
    match event.dur_us {
        Some(dur) => {
            out.push_str(",\"ph\":\"X\",\"ts\":");
            push_json_f64(out, event.ts_us);
            out.push_str(",\"dur\":");
            push_json_f64(out, dur);
        }
        None => {
            // Instant events need a scope; "t" = thread-scoped tick mark.
            out.push_str(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
            push_json_f64(out, event.ts_us);
        }
    }
    let _ = write!(out, ",\"pid\":{pid},\"tid\":{}", event.tid);
    out.push_str(",\"args\":");
    push_args(out, &event.args);
    out.push('}');
}

/// Everything in a Chrome-trace file before the first real event: the
/// opening of the `traceEvents` array plus the two `ph:"M"` process-name
/// metadata records. Shared verbatim by the in-memory serialiser below and
/// the chunked writer in [`crate::stream`], which is what makes the two
/// sinks byte-equivalent.
pub(crate) const TRACE_PREFIX: &str = "{\"traceEvents\":[\
    {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
    \"args\":{\"name\":\"wall clock\"}},\
    {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
    \"args\":{\"name\":\"virtual clock (simulated)\"}}";

/// Serialises every recorded span as Chrome-trace-format JSON:
/// `{"traceEvents":[...]}` with `ph:"X"` duration events (`name`, `cat`,
/// `ts`, `dur` in microseconds), `ph:"i"` instants, and `ph:"M"` metadata
/// naming pid 0 "wall clock" and pid 1 "virtual clock (simulated)". Load
/// the file in <https://ui.perfetto.dev> or `chrome://tracing`.
#[must_use]
pub fn chrome_trace_json() -> String {
    let spans = spans_snapshot();
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str(TRACE_PREFIX);
    for event in &spans {
        out.push(',');
        push_trace_event(&mut out, event);
    }
    out.push_str("]}");
    out
}

/// Serialises the current metric registry as JSONL: one JSON object per
/// line, in key order. Counters and gauges carry `value`; histograms carry
/// `count`/`sum`/`min`/`max`/`p50`/`p95`/`p99` plus a `buckets` array of
/// `{"le": <bound>, "count": <cumulative>}` objects (the overflow bucket
/// spells its bound `"+Inf"`, since JSON has no infinity literal).
#[must_use]
pub fn metrics_jsonl() -> String {
    metrics_jsonl_at(None, None)
}

/// [`metrics_jsonl`] with streaming-snapshot options: `t_secs` prepends a
/// `"t"` (virtual-clock seconds) field to every line so a file of
/// concatenated snapshots stays a self-describing time series, and
/// `max_buckets` downsamples each histogram's bucket array via
/// [`crate::HistogramSnapshot::downsample`] before serialising.
#[must_use]
pub(crate) fn metrics_jsonl_at(t_secs: Option<f64>, max_buckets: Option<usize>) -> String {
    let mut out = String::new();
    for sample in registry_snapshot() {
        out.push('{');
        if let Some(t) = t_secs {
            out.push_str("\"t\":");
            push_json_f64(&mut out, t);
            out.push(',');
        }
        out.push_str("\"key\":");
        push_json_str(&mut out, sample.key);
        match &sample.value {
            MetricValue::Counter(n) => {
                let _ = write!(out, ",\"type\":\"counter\",\"value\":{n}");
            }
            MetricValue::Gauge(v) => {
                out.push_str(",\"type\":\"gauge\",\"value\":");
                push_json_f64(&mut out, *v);
            }
            MetricValue::Histogram(full) => {
                let downsampled;
                let h = match max_buckets {
                    Some(limit) => {
                        downsampled = full.downsample(limit);
                        &downsampled
                    }
                    None => full,
                };
                let _ = write!(out, ",\"type\":\"histogram\",\"count\":{}", h.count);
                for (field, v) in [
                    ("sum", h.sum),
                    ("min", h.min),
                    ("max", h.max),
                    ("p50", h.p50),
                    ("p95", h.p95),
                    ("p99", h.p99),
                ] {
                    let _ = write!(out, ",\"{field}\":");
                    push_json_f64(&mut out, v);
                }
                out.push_str(",\"buckets\":[");
                for (i, (bound, cumulative)) in h.buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"le\":");
                    if bound.is_finite() {
                        push_json_f64(&mut out, *bound);
                    } else {
                        out.push_str("\"+Inf\"");
                    }
                    let _ = write!(out, ",\"count\":{cumulative}}}");
                }
                out.push(']');
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Spells a histogram bucket bound the way Prometheus expects: `+Inf` for
/// the overflow bucket, the shortest round-trip decimal otherwise.
fn prometheus_bound(bound: f64) -> String {
    if bound.is_finite() {
        format!("{bound}")
    } else {
        "+Inf".to_string()
    }
}

/// Renders the current metric registry in the Prometheus text exposition
/// format (version 0.0.4), in stable key order. Registry keys use dots
/// (`evo.search.generations`); Prometheus metric names cannot, so dots and
/// dashes become underscores. Histograms render as native Prometheus
/// histograms: cumulative `_bucket{le="..."}` series ending at `+Inf`,
/// plus `_sum` and `_count`.
#[must_use]
pub fn prometheus_text() -> String {
    let mut out = String::new();
    for sample in registry_snapshot() {
        let name: String = sample
            .key
            .chars()
            .map(|c| if c == '.' || c == '-' { '_' } else { c })
            .collect();
        match &sample.value {
            MetricValue::Counter(n) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {n}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let mut line = format!("{name} ");
                push_json_f64(&mut line, *v);
                out.push_str(&line);
                out.push('\n');
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                for (bound, cumulative) in &h.buckets {
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"{}\"}} {cumulative}",
                        prometheus_bound(*bound)
                    );
                }
                let mut sum_line = format!("{name}_sum ");
                push_json_f64(&mut sum_line, h.sum);
                out.push_str(&sum_line);
                out.push('\n');
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

fn write_file(path: &Path, contents: &str) -> Result<(), ExportError> {
    std::fs::write(path, contents).map_err(|source| ExportError {
        path: path.to_path_buf(),
        source,
    })
}

/// Writes [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> Result<(), ExportError> {
    write_file(path.as_ref(), &chrome_trace_json())
}

/// Writes [`metrics_jsonl`] to `path`.
pub fn write_metrics_jsonl(path: impl AsRef<Path>) -> Result<(), ExportError> {
    write_file(path.as_ref(), &metrics_jsonl())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_zero() {
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        out.push(',');
        push_json_f64(&mut out, f64::INFINITY);
        out.push(',');
        push_json_f64(&mut out, 2.5);
        assert_eq!(out, "0,0,2.5");
    }

    #[test]
    fn empty_trace_still_has_metadata() {
        let _g = crate::test_level_lock();
        crate::set_level(crate::ObsLevel::Counters);
        crate::reset();
        let json = chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("process_name").count(), 2);
    }

    #[test]
    fn prometheus_text_renders_all_metric_kinds() {
        let _g = crate::test_level_lock();
        crate::set_level(crate::ObsLevel::Counters);
        crate::reset();
        crate::counter("obs.test.prom_counter").add(3);
        crate::gauge("obs.test.prom_gauge").set(1.5);
        let h = crate::histogram("obs.test.prom_hist");
        h.observe(0.3);
        h.observe(2e8);
        let text = prometheus_text();
        assert!(text.contains("# TYPE obs_test_prom_counter counter"));
        assert!(text.contains("obs_test_prom_counter 3"));
        assert!(text.contains("obs_test_prom_gauge 1.5"));
        assert!(text.contains("# TYPE obs_test_prom_hist histogram"));
        assert!(text.contains("obs_test_prom_hist_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("obs_test_prom_hist_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("obs_test_prom_hist_count 2"));
        assert!(
            !text.contains("obs.test"),
            "metric names must not keep registry dots"
        );
    }

    #[test]
    fn jsonl_histogram_buckets_parse_back() {
        let _g = crate::test_level_lock();
        crate::set_level(crate::ObsLevel::Counters);
        crate::reset();
        let h = crate::histogram("obs.test.jsonl_buckets");
        h.observe(0.3);
        let jsonl = metrics_jsonl();
        let line = jsonl
            .lines()
            .find(|l| l.contains("obs.test.jsonl_buckets"))
            .expect("histogram line present");
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        let buckets = v.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), crate::metrics::DEFAULT_BOUNDS.len() + 1);
        assert_eq!(
            buckets.last().unwrap().get("le").unwrap().as_str(),
            Some("+Inf")
        );
        assert_eq!(
            buckets.last().unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn export_error_reports_path() {
        let err = write_chrome_trace("/nonexistent-dir-for-obs-test/trace.json").unwrap_err();
        assert!(err.to_string().contains("/nonexistent-dir-for-obs-test"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
