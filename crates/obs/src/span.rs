//! The span API: named, categorised intervals on the wall or virtual clock.
//!
//! Wall-time spans are opened with [`span`] and measured with
//! [`std::time::Instant`] against a process-global epoch; they record on
//! drop, so nesting falls out of scope nesting. Virtual-time spans
//! ([`virtual_span`]) are recorded after the fact from simulated
//! timestamps — the simulator knows a segment's start and end in `SimTime`
//! only once it closes.
//!
//! In the Chrome-trace export the two clocks become two processes
//! (`pid 0` = wall, `pid 1` = virtual) so Perfetto renders them as
//! separate tracks instead of interleaving nanosecond-scale host costs
//! with second-scale simulated intervals.

use ones_sync::{LazyLock, Mutex};
use std::time::Instant;

/// Which clock a span's timestamps live on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Host wall time, microseconds since the process-global epoch.
    Wall,
    /// Simulated virtual time, microseconds since simulation start.
    Virtual,
}

/// A typed span/instant argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Floating-point argument.
    F64(f64),
    /// String argument.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One recorded span (duration event) or instant.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (`name` in the Chrome-trace event).
    pub name: &'static str,
    /// Category, by convention the reporting crate (`cat`).
    pub cat: &'static str,
    /// Clock the timestamps live on (exported as the `pid`).
    pub clock: Clock,
    /// Track within the clock (exported as the `tid`; the simulator uses
    /// job ids so every job gets its own Perfetto row).
    pub tid: u64,
    /// Start, microseconds on `clock`.
    pub ts_us: f64,
    /// Duration, microseconds; `None` marks an instant event.
    pub dur_us: Option<f64>,
    /// Attached key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Spans kept in memory before a runaway run starts dropping (a 64-GPU
/// sweep records well under a million). Backpressure for the no-sink
/// configuration only: with a chunked [`crate::stream`] sink attached the
/// buffer drains to disk long before the cap.
const MAX_SPANS: usize = 4_000_000;

/// The process-global span recorder: the in-memory buffer plus the
/// optional streaming trace sink it drains into. One mutex covers both so
/// a flush triggered mid-`push` cannot race a concurrent snapshot or
/// sink attach/detach.
#[derive(Debug)]
pub(crate) struct Recorder {
    pub(crate) spans: Vec<SpanEvent>,
    pub(crate) sink: Option<crate::stream::TraceSink>,
    /// Drop threshold for the no-sink configuration ([`MAX_SPANS`] except
    /// under tests that shrink it to exercise the overflow path).
    pub(crate) cap: usize,
    /// Largest buffer length ever observed (mirrored into the
    /// `obs.recorder.buffer_high_water` gauge on change).
    pub(crate) high_water: usize,
}

static RECORDER: Mutex<Recorder> = Mutex::new(Recorder {
    spans: Vec::new(),
    sink: None,
    cap: MAX_SPANS,
    high_water: 0,
});

pub(crate) fn recorder() -> ones_sync::MutexGuard<'static, Recorder> {
    RECORDER.lock().expect("span recorder poisoned")
}

static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);
static RECORDED: LazyLock<&'static crate::Counter> =
    LazyLock::new(|| crate::counter("obs.recorder.recorded_spans"));
static DROPPED: LazyLock<&'static crate::Counter> =
    LazyLock::new(|| crate::counter("obs.recorder.dropped_spans"));
static HIGH_WATER: LazyLock<&'static crate::Gauge> =
    LazyLock::new(|| crate::gauge("obs.recorder.buffer_high_water"));

/// Microseconds of wall time since the process-global epoch.
#[must_use]
pub(crate) fn wall_ts_us() -> f64 {
    EPOCH.elapsed().as_nanos() as f64 / 1e3
}

/// Records a pre-built [`SpanEvent`]. This is the single entry point into
/// the recorder: every span/instant helper lands here, and tests use it to
/// replay captured events through an attached streaming sink.
///
/// With a sink attached the buffer drains to disk whenever it reaches the
/// sink's chunk size, so nothing is ever dropped; without one, events past
/// the in-memory cap are dropped and counted in
/// `obs.recorder.dropped_spans`. Either way every call is counted in
/// `obs.recorder.recorded_spans`, giving the conservation invariant
/// `written + buffered + dropped == recorded`.
pub fn record_event(event: SpanEvent) {
    RECORDED.add(1);
    let mut rec = recorder();
    let rec = &mut *rec;
    if rec.sink.is_none() && rec.spans.len() >= rec.cap {
        DROPPED.add(1);
        return;
    }
    rec.spans.push(event);
    if rec.spans.len() > rec.high_water {
        rec.high_water = rec.spans.len();
        HIGH_WATER.set(rec.high_water as f64);
    }
    if let Some(sink) = rec.sink.as_mut() {
        if rec.spans.len() >= sink.chunk_events() {
            if let Err(err) = sink.write_chunk(&rec.spans) {
                // A failing disk must not wedge recording: detach the sink,
                // fall back to the capped in-memory mode, and surface the
                // error at finalize time.
                crate::stream::note_sink_error(&mut rec.sink, err);
            } else {
                rec.spans.clear();
            }
        }
    }
}

fn push(event: SpanEvent) {
    record_event(event);
}

/// Discards every recorded span while keeping metrics and the level
/// intact — e.g. between benchmark iterations, or after exporting a
/// trace, to bound the recorder's memory. Spans already flushed to an
/// attached streaming sink are untouched.
pub fn clear_spans() {
    let mut rec = recorder();
    rec.spans.clear();
    rec.high_water = 0;
}

/// Shrinks the in-memory drop cap so tests can exercise the overflow path
/// without recording four million spans. Not part of the API proper.
#[doc(hidden)]
pub fn set_recorder_cap_for_tests(cap: usize) {
    recorder().cap = cap;
}

#[doc(hidden)]
pub fn reset_recorder_cap_for_tests() {
    recorder().cap = MAX_SPANS;
}

/// A copy of every span still buffered in memory, in recording order.
/// With a streaming sink attached this is only the tail that has not yet
/// been flushed to disk.
#[must_use]
pub fn spans_snapshot() -> Vec<SpanEvent> {
    recorder().spans.clone()
}

/// Cheap accounting snapshot of the span recorder (no span copies) —
/// what `GET /v1/obs` and status displays read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderStatus {
    /// Spans currently buffered in memory (with a streaming sink
    /// attached, only the unflushed tail).
    pub buffered: usize,
    /// Largest buffer length observed since the last [`clear_spans`].
    pub high_water: usize,
    /// Drop threshold for the no-sink configuration.
    pub cap: usize,
}

/// The recorder's current buffer accounting.
#[must_use]
pub fn recorder_status() -> RecorderStatus {
    let rec = recorder();
    RecorderStatus {
        buffered: rec.spans.len(),
        high_water: rec.high_water,
        cap: rec.cap,
    }
}

/// An open wall-time span; records itself on drop. A guard created while
/// spans are disabled is inert — every method is a no-op.
#[derive(Debug)]
pub struct ScopedSpan {
    active: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    cat: &'static str,
    tid: u64,
    start_ts_us: f64,
    started: Instant,
    args: Vec<(&'static str, ArgValue)>,
}

impl ScopedSpan {
    /// Attaches a key/value argument (no-op when inert).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(open) = &mut self.active {
            open.args.push((key, value.into()));
        }
    }

    /// Builder-style [`ScopedSpan::arg`].
    #[must_use]
    pub fn with_arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.arg(key, value);
        self
    }

    /// Whether this guard is live (spans were enabled at creation).
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for ScopedSpan {
    fn drop(&mut self) {
        let Some(open) = self.active.take() else {
            return;
        };
        push(SpanEvent {
            name: open.name,
            cat: open.cat,
            clock: Clock::Wall,
            tid: open.tid,
            ts_us: open.start_ts_us,
            dur_us: Some(open.started.elapsed().as_nanos() as f64 / 1e3),
            args: open.args,
        });
    }
}

/// Opens a wall-time span on track 0; see also the [`span!`](crate::span!)
/// macro.
#[must_use]
pub fn span(name: &'static str, cat: &'static str) -> ScopedSpan {
    span_tid(name, cat, 0)
}

/// Opens a wall-time span on an explicit track.
#[must_use]
pub fn span_tid(name: &'static str, cat: &'static str, tid: u64) -> ScopedSpan {
    if !crate::spans_enabled() {
        return ScopedSpan { active: None };
    }
    ScopedSpan {
        active: Some(OpenSpan {
            name,
            cat,
            tid,
            start_ts_us: wall_ts_us(),
            started: Instant::now(),
            args: Vec::new(),
        }),
    }
}

/// Records a closed interval on the virtual clock (seconds of simulated
/// time). Degenerate intervals (`end <= start`) are clamped to zero
/// duration rather than dropped, so causality stays visible in the trace.
pub fn virtual_span(
    name: &'static str,
    cat: &'static str,
    tid: u64,
    start_secs: f64,
    end_secs: f64,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !crate::spans_enabled() {
        return;
    }
    push(SpanEvent {
        name,
        cat,
        clock: Clock::Virtual,
        tid,
        ts_us: start_secs * 1e6,
        dur_us: Some(((end_secs - start_secs) * 1e6).max(0.0)),
        args,
    });
}

/// Records an instant on the virtual clock.
pub fn virtual_instant(
    name: &'static str,
    cat: &'static str,
    tid: u64,
    at_secs: f64,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !crate::spans_enabled() {
        return;
    }
    push(SpanEvent {
        name,
        cat,
        clock: Clock::Virtual,
        tid,
        ts_us: at_secs * 1e6,
        dur_us: None,
        args,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsLevel;

    #[test]
    fn scoped_span_records_on_drop() {
        let _g = crate::test_level_lock();
        crate::set_level(ObsLevel::Full);
        clear_spans();
        {
            let mut s = span("unit", "obs.test");
            s.arg("k", 7u64);
            std::hint::black_box(&s);
        }
        let spans = spans_snapshot();
        crate::set_level(ObsLevel::Counters);
        assert_eq!(spans.len(), 1);
        let e = &spans[0];
        assert_eq!(
            (e.name, e.cat, e.clock, e.tid),
            ("unit", "obs.test", Clock::Wall, 0)
        );
        assert!(e.dur_us.unwrap() >= 0.0);
        assert_eq!(e.args, vec![("k", ArgValue::U64(7))]);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = crate::test_level_lock();
        crate::set_level(ObsLevel::Counters);
        clear_spans();
        {
            let mut s = span("never", "obs.test");
            assert!(!s.is_recording());
            s.arg("ignored", 1u64);
        }
        virtual_span("never", "obs.test", 0, 0.0, 1.0, Vec::new());
        assert!(spans_snapshot().is_empty());
    }

    #[test]
    fn virtual_span_clamps_degenerate_intervals() {
        let _g = crate::test_level_lock();
        crate::set_level(ObsLevel::Full);
        clear_spans();
        virtual_span("seg", "obs.test", 3, 5.0, 4.0, Vec::new());
        virtual_instant("mark", "obs.test", 3, 6.0, Vec::new());
        let spans = spans_snapshot();
        crate::set_level(ObsLevel::Counters);
        assert_eq!(spans[0].dur_us, Some(0.0));
        assert_eq!(spans[0].ts_us, 5.0e6);
        assert_eq!(spans[1].dur_us, None);
        assert_eq!(spans[1].clock, Clock::Virtual);
    }
}
