//! # ones-obs — unified tracing + metrics for the ONES reproduction
//!
//! Every runtime crate (simulator, scheduler, evolutionary search,
//! predictor, all-reduce model) reports into one process-global recorder,
//! replacing the fragmented introspection that used to live in ad-hoc
//! counters. Three pieces:
//!
//! * **Spans** ([`span`], [`ScopedSpan`], [`virtual_span`]) — named,
//!   categorised intervals in *wall* time (host-side cost of a scheduling
//!   round, a search generation, a predictor refit) or *virtual* time (a
//!   job's training epoch on the simulated clock). Nestable and
//!   thread-safe; recording order never feeds back into scheduling, so
//!   traces are pure observation.
//! * **Metrics** ([`counter`], [`gauge`], [`histogram`]) — a registry of
//!   monotonic counters, f64 gauges and fixed-bucket histograms (with
//!   p50/p95/p99 extraction), addressed by static string keys following
//!   the `<crate>.<subsystem>.<name>` convention (DESIGN.md §5).
//! * **Sinks** — the in-memory recorder exports Chrome-trace-format JSON
//!   ([`chrome_trace_json`], loadable in Perfetto / `chrome://tracing`),
//!   a JSONL metrics snapshot ([`metrics_jsonl`]), and the Prometheus
//!   text exposition format ([`prometheus_text`], served by `ones-d` at
//!   `GET /metrics`). [`registry_snapshot`] exposes the same state as a
//!   typed, alphabetically-ordered [`Vec<MetricSample>`] including
//!   cumulative histogram buckets.
//!
//! ## Verbosity
//!
//! A process-global [`ObsLevel`] gates all recording:
//!
//! | level      | counters/gauges/histograms | spans |
//! |------------|----------------------------|-------|
//! | `Off`      | no                         | no    |
//! | `Counters` | yes                        | no    |
//! | `Full`     | yes                        | yes   |
//!
//! The default is `Counters`. Disabled operations cost one relaxed atomic
//! load; the determinism property (identical schedules with observability
//! on or off) is enforced by `crates/simulator/tests/obs_determinism.rs`
//! and the `--obs full` overhead is bounded by the `observability` bench.
//!
//! The recorder is process-global (like `tracing`'s subscriber): two
//! simulations running concurrently in one process interleave their
//! events. Call [`reset`] between runs that must not share state.

mod export;
mod metrics;
mod span;
pub mod stream;

pub use export::{
    chrome_trace_json, metrics_jsonl, prometheus_text, write_chrome_trace, write_metrics_jsonl,
    ExportError,
};
pub use metrics::{
    counter, gauge, histogram, registry_snapshot, snapshot, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricSample, MetricValue, DEFAULT_BOUNDS,
};
pub use span::{
    clear_spans, record_event, recorder_status, reset_recorder_cap_for_tests,
    set_recorder_cap_for_tests, span, span_tid, spans_snapshot, virtual_instant, virtual_span,
    ArgValue, Clock, RecorderStatus, ScopedSpan, SpanEvent,
};
pub use stream::{
    attach_metrics_sink, attach_trace_sink, finalize_metrics_sink, finalize_trace_sink,
    flush_trace_sink, force_metrics_snapshot, metrics_sink_attached, metrics_sink_status,
    metrics_tick, rotate_trace_sink, trace_sink_attached, trace_sink_status, MetricsSinkStatus,
    TraceSinkStatus, DEFAULT_METRICS_INTERVAL_SECS, DEFAULT_METRICS_MAX_BUCKETS,
    DEFAULT_TRACE_CHUNK_EVENTS,
};

use ones_sync::atomic::{AtomicU8, Ordering};

/// Observability verbosity (see the crate docs table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ObsLevel {
    /// Record nothing.
    Off = 0,
    /// Record metrics (counters, gauges, histograms) but no spans.
    Counters = 1,
    /// Record metrics and spans.
    Full = 2,
}

impl ObsLevel {
    /// Parses the CLI spelling (`off` / `counters` / `full`).
    #[must_use]
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(ObsLevel::Off),
            "counters" => Some(ObsLevel::Counters),
            "full" => Some(ObsLevel::Full),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Counters => "counters",
            ObsLevel::Full => "full",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(ObsLevel::Counters as u8);

/// Sets the process-global verbosity.
pub fn set_level(level: ObsLevel) {
    // relaxed: the level is a lone flag; recording code reads nothing
    // else through it, so no release ordering is needed.
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-global verbosity.
#[must_use]
pub fn level() -> ObsLevel {
    // relaxed: lone flag, see set_level.
    match LEVEL.load(Ordering::Relaxed) {
        0 => ObsLevel::Off,
        1 => ObsLevel::Counters,
        _ => ObsLevel::Full,
    }
}

/// Whether metric recording is enabled (`Counters` or `Full`).
#[inline]
#[must_use]
pub fn counters_enabled() -> bool {
    // relaxed: lone flag, see set_level.
    LEVEL.load(Ordering::Relaxed) >= ObsLevel::Counters as u8
}

/// Whether span recording is enabled (`Full`).
#[inline]
#[must_use]
pub fn spans_enabled() -> bool {
    // relaxed: lone flag, see set_level.
    LEVEL.load(Ordering::Relaxed) >= ObsLevel::Full as u8
}

/// Clears all recorded spans and zeroes every registered metric. Handles
/// returned by [`counter`]/[`gauge`]/[`histogram`] stay valid — the
/// registry keeps its keys, only the values reset.
pub fn reset() {
    span::clear_spans();
    metrics::reset_metrics();
}

/// Opens a wall-time span guard; recorded on drop. See [`span`].
///
/// ```
/// let _g = ones_obs::span!("evo", "generation");
/// ```
#[macro_export]
macro_rules! span {
    ($cat:expr, $name:expr) => {
        $crate::span($name, $cat)
    };
    ($cat:expr, $name:expr, tid = $tid:expr) => {
        $crate::span_tid($name, $cat, $tid)
    };
}

/// Serialises tests that flip the process-global level (the cargo test
/// harness runs tests of one binary on concurrent threads). Public so
/// integration tests — e.g. the loom models in `tests/loom_metrics.rs` —
/// can take the same lock as the unit tests; not part of the API proper.
#[doc(hidden)]
pub static TEST_LEVEL_GUARD: ones_sync::Mutex<()> = ones_sync::Mutex::new(());

#[doc(hidden)]
pub fn test_level_lock() -> ones_sync::MutexGuard<'static, ()> {
    TEST_LEVEL_GUARD
        .lock()
        .unwrap_or_else(ones_sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parses_and_round_trips() {
        for l in [ObsLevel::Off, ObsLevel::Counters, ObsLevel::Full] {
            assert_eq!(ObsLevel::parse(l.name()), Some(l));
        }
        assert_eq!(ObsLevel::parse("FULL"), Some(ObsLevel::Full));
        assert_eq!(ObsLevel::parse("verbose"), None);
        assert!(ObsLevel::Off < ObsLevel::Counters);
        assert!(ObsLevel::Counters < ObsLevel::Full);
    }
}
