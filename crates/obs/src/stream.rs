//! Streaming sinks: a chunked Chrome-trace writer and periodic
//! metrics-JSONL snapshots, for runs too long to buffer in memory.
//!
//! ## Chunked trace layout
//!
//! The writer keeps the file **valid, Perfetto-loadable JSON at every
//! flush boundary**. On attach it writes the shared trace prefix (the
//! `traceEvents` opening plus the two process-name metadata records —
//! byte-identical to [`crate::chrome_trace_json`]) followed by the `]}`
//! terminator. Each chunk flush then seeks back over the trailing two
//! bytes and writes `,<event>,<event>,…]}` in one `write_all`. A SIGTERM
//! between flushes therefore still yields a loadable trace, and the bytes
//! at finalize are exactly what the in-memory serialiser would have
//! produced for the same events.
//!
//! Spans *drain* into the sink: the recorder buffer empties whenever it
//! reaches the chunk size, so peak memory is bounded by the chunk size
//! regardless of run length and nothing is dropped. The in-memory cap
//! stays as backpressure for the no-sink configuration only.
//!
//! ## Metrics snapshots
//!
//! [`metrics_tick`] stamps the registry to a JSONL file at a fixed
//! virtual-clock interval (one line per metric per snapshot, each carrying
//! a `"t"` field), with histogram buckets downsampled via
//! [`crate::HistogramSnapshot::downsample`]. Timestamps ride the
//! *virtual* clock so replays of the same trace produce the same series.
//!
//! Sink self-metrics: `obs.sink.flushes`, `obs.sink.bytes_written`,
//! `obs.sink.events_written`, `obs.sink.write_errors`,
//! `obs.sink.metrics_snapshots`, and the recorder's
//! `obs.recorder.buffer_high_water` gauge.

use ones_sync::atomic::{AtomicU64, Ordering};
use ones_sync::{LazyLock, Mutex};
use std::fs::File;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::export::{metrics_jsonl_at, push_trace_event, ExportError, TRACE_PREFIX};
use crate::span::{recorder, SpanEvent};

/// Default chunk size for the streaming trace writer: small enough to
/// bound the recorder to a few MB, large enough that flush syscalls are
/// noise next to serialisation.
pub const DEFAULT_TRACE_CHUNK_EVENTS: usize = 65_536;

/// Default virtual-time spacing between streamed metrics snapshots.
pub const DEFAULT_METRICS_INTERVAL_SECS: f64 = 300.0;

/// Default histogram bucket budget for streamed snapshots (the quantile
/// edges survive downsampling, see
/// [`crate::HistogramSnapshot::downsample`]).
pub const DEFAULT_METRICS_MAX_BUCKETS: usize = 10;

static FLUSHES: LazyLock<&'static crate::Counter> =
    LazyLock::new(|| crate::counter("obs.sink.flushes"));
static BYTES_WRITTEN: LazyLock<&'static crate::Counter> =
    LazyLock::new(|| crate::counter("obs.sink.bytes_written"));
static EVENTS_WRITTEN: LazyLock<&'static crate::Counter> =
    LazyLock::new(|| crate::counter("obs.sink.events_written"));
static WRITE_ERRORS: LazyLock<&'static crate::Counter> =
    LazyLock::new(|| crate::counter("obs.sink.write_errors"));
static METRICS_SNAPSHOTS: LazyLock<&'static crate::Counter> =
    LazyLock::new(|| crate::counter("obs.sink.metrics_snapshots"));

/// The streaming half of the span recorder (held inside the recorder
/// mutex, see [`crate::span`]).
#[derive(Debug)]
pub(crate) struct TraceSink {
    file: File,
    /// Path of the file currently being appended to.
    path: PathBuf,
    /// Path the sink was attached with; rotations derive siblings from it.
    base: PathBuf,
    chunk_events: usize,
    rotations: u32,
    events_written: u64,
}

/// A point-in-time description of the attached trace sink.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSinkStatus {
    /// File currently being appended to.
    pub path: PathBuf,
    /// Buffered events per flushed chunk.
    pub chunk_events: usize,
    /// Events flushed to this sink since attach (across rotations).
    pub events_written: u64,
    /// Completed [`rotate_trace_sink`] calls.
    pub rotations: u32,
}

impl TraceSink {
    fn open(
        path: &Path,
        base: &Path,
        chunk_events: usize,
        rotations: u32,
    ) -> std::io::Result<Self> {
        let mut file = File::create(path)?;
        let mut header = String::with_capacity(TRACE_PREFIX.len() + 2);
        header.push_str(TRACE_PREFIX);
        header.push_str("]}");
        file.write_all(header.as_bytes())?;
        BYTES_WRITTEN.add(header.len() as u64);
        Ok(TraceSink {
            file,
            path: path.to_path_buf(),
            base: base.to_path_buf(),
            chunk_events: chunk_events.max(1),
            rotations,
            events_written: 0,
        })
    }

    pub(crate) fn chunk_events(&self) -> usize {
        self.chunk_events
    }

    /// Appends `events` before the trailing `]}` terminator in one write.
    pub(crate) fn write_chunk(&mut self, events: &[SpanEvent]) -> std::io::Result<()> {
        if events.is_empty() {
            return Ok(());
        }
        let mut buf = String::with_capacity(events.len() * 160 + 2);
        for event in events {
            buf.push(',');
            push_trace_event(&mut buf, event);
        }
        buf.push_str("]}");
        self.file.seek(SeekFrom::End(-2))?;
        self.file.write_all(buf.as_bytes())?;
        self.events_written += events.len() as u64;
        FLUSHES.inc();
        BYTES_WRITTEN.add(buf.len() as u64);
        EVENTS_WRITTEN.add(events.len() as u64);
        Ok(())
    }
}

/// An io error from a mid-run chunk flush, surfaced at the next
/// `flush`/`finalize` call (the recording hot path cannot return it).
static PENDING_TRACE_ERROR: Mutex<Option<ExportError>> = Mutex::new(None);

/// Detaches a sink that failed to write: counts the error, stashes it for
/// [`finalize_trace_sink`], and falls the recorder back to the capped
/// in-memory mode.
pub(crate) fn note_sink_error(sink: &mut Option<TraceSink>, source: std::io::Error) {
    WRITE_ERRORS.inc();
    if let Some(s) = sink.take() {
        let mut pending = PENDING_TRACE_ERROR
            .lock()
            .expect("sink error slot poisoned");
        pending.get_or_insert(ExportError {
            path: s.path,
            source,
        });
    }
}

fn take_pending_trace_error() -> Option<ExportError> {
    PENDING_TRACE_ERROR
        .lock()
        .expect("sink error slot poisoned")
        .take()
}

/// Attaches a chunked Chrome-trace sink at `path`: the recorder drains
/// into it in `chunk_events`-sized chunks and the file is valid JSON at
/// every flush boundary. Replaces (and finalizes) any previously attached
/// sink; spans already buffered in memory are carried over into the new
/// stream.
pub fn attach_trace_sink(path: impl AsRef<Path>, chunk_events: usize) -> Result<(), ExportError> {
    let path = path.as_ref();
    let sink = TraceSink::open(path, path, chunk_events, 0).map_err(|source| ExportError {
        path: path.to_path_buf(),
        source,
    })?;
    let mut rec = recorder();
    let previous = rec.sink.replace(sink);
    drop(rec);
    if let Some(previous) = previous {
        // The old stream ends here; it keeps the events it already has
        // (buffered spans continue into the new stream instead).
        let _ = previous.file.sync_all();
    }
    Ok(())
}

/// Whether a streaming trace sink is currently attached.
#[must_use]
pub fn trace_sink_attached() -> bool {
    recorder().sink.is_some()
}

/// The attached trace sink's path and progress, if any.
#[must_use]
pub fn trace_sink_status() -> Option<TraceSinkStatus> {
    recorder().sink.as_ref().map(|s| TraceSinkStatus {
        path: s.path.clone(),
        chunk_events: s.chunk_events,
        events_written: s.events_written,
        rotations: s.rotations,
    })
}

/// Forces the buffered spans out to the attached trace sink (no-op
/// without one). Returns whether a sink was attached.
pub fn flush_trace_sink() -> Result<bool, ExportError> {
    let mut rec = recorder();
    let rec = &mut *rec;
    let Some(sink) = rec.sink.as_mut() else {
        return match take_pending_trace_error() {
            Some(err) => Err(err),
            None => Ok(false),
        };
    };
    match sink.write_chunk(&rec.spans) {
        Ok(()) => {
            rec.spans.clear();
            Ok(true)
        }
        Err(source) => {
            note_sink_error(&mut rec.sink, source);
            Err(take_pending_trace_error().expect("error just noted"))
        }
    }
}

/// Flushes the remaining buffered spans, syncs, and detaches the sink.
/// Returns the finalized file's path, or `None` when no sink was attached
/// (surfacing any error a mid-run flush deferred).
pub fn finalize_trace_sink() -> Result<Option<PathBuf>, ExportError> {
    let mut rec = recorder();
    let rec = &mut *rec;
    let Some(mut sink) = rec.sink.take() else {
        return match take_pending_trace_error() {
            Some(err) => Err(err),
            None => Ok(None),
        };
    };
    let result = sink
        .write_chunk(&rec.spans)
        .and_then(|()| sink.file.sync_all());
    rec.spans.clear();
    match result {
        Ok(()) => Ok(Some(sink.path)),
        Err(source) => {
            WRITE_ERRORS.inc();
            Err(ExportError {
                path: sink.path,
                source,
            })
        }
    }
}

/// `trace.json` → `trace.1.json` (or `trace` → `trace.1`).
fn rotated_path(base: &Path, n: u32) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let name = match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}.{n}.{ext}"),
        None => format!("{stem}.{n}"),
    };
    base.with_file_name(name)
}

/// Rotates the attached trace sink: flushes and finalizes the current
/// file in place, then continues streaming into a numbered sibling
/// (`trace.json`, `trace.1.json`, `trace.2.json`, … in time order). Every
/// finalized file is independently Perfetto-loadable. Returns the path of
/// the file just finalized, or `None` when no sink is attached.
pub fn rotate_trace_sink() -> Result<Option<PathBuf>, ExportError> {
    let mut rec = recorder();
    let rec = &mut *rec;
    let Some(mut sink) = rec.sink.take() else {
        return Ok(None);
    };
    let sealed = sink
        .write_chunk(&rec.spans)
        .and_then(|()| sink.file.sync_all())
        .map_err(|source| ExportError {
            path: sink.path.clone(),
            source,
        });
    rec.spans.clear();
    sealed?;
    let rotations = sink.rotations + 1;
    let next_path = rotated_path(&sink.base, rotations);
    let mut next = TraceSink::open(&next_path, &sink.base, sink.chunk_events, rotations).map_err(
        |source| ExportError {
            path: next_path.clone(),
            source,
        },
    )?;
    next.events_written = sink.events_written;
    rec.sink = Some(next);
    Ok(Some(sink.path))
}

// ---------------------------------------------------------------------
// Periodic metrics snapshots
// ---------------------------------------------------------------------

#[derive(Debug)]
struct MetricsSink {
    file: File,
    path: PathBuf,
    interval_secs: f64,
    max_buckets: usize,
    snapshots: u64,
    next_due_secs: f64,
}

/// A point-in-time description of the attached metrics sink.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSinkStatus {
    /// JSONL file being appended to.
    pub path: PathBuf,
    /// Virtual-clock seconds between snapshots.
    pub interval_secs: f64,
    /// Histogram bucket budget per streamed line.
    pub max_buckets: usize,
    /// Snapshots written since attach.
    pub snapshots: u64,
}

static METRICS_SINK: Mutex<Option<MetricsSink>> = Mutex::new(None);

/// `f64::INFINITY.to_bits()`: the "no snapshot due" sentinel for the
/// lock-free deadline pre-check.
const NEVER_DUE_BITS: u64 = 0x7ff0_0000_0000_0000;

static NEXT_DUE_BITS: AtomicU64 = AtomicU64::new(NEVER_DUE_BITS);

/// Attaches a periodic metrics-JSONL sink: every `interval_secs` of
/// virtual time (measured at [`metrics_tick`] call sites), the full
/// registry is appended as one snapshot — one line per metric, each with
/// a `"t"` field and histograms downsampled to `max_buckets`. The first
/// snapshot is written by the first tick.
pub fn attach_metrics_sink(
    path: impl AsRef<Path>,
    interval_secs: f64,
    max_buckets: usize,
) -> Result<(), ExportError> {
    let path = path.as_ref();
    let file = File::create(path).map_err(|source| ExportError {
        path: path.to_path_buf(),
        source,
    })?;
    let mut guard = METRICS_SINK.lock().expect("metrics sink poisoned");
    *guard = Some(MetricsSink {
        file,
        path: path.to_path_buf(),
        interval_secs: interval_secs.max(0.0),
        max_buckets: max_buckets.max(1),
        snapshots: 0,
        next_due_secs: 0.0,
    });
    // relaxed: the deadline is a hint re-checked under the sink mutex;
    // a stale read only delays or duplicates one cheap due-check.
    NEXT_DUE_BITS.store(0.0f64.to_bits(), Ordering::Relaxed);
    Ok(())
}

/// Whether a streaming metrics sink is currently attached.
#[must_use]
pub fn metrics_sink_attached() -> bool {
    METRICS_SINK
        .lock()
        .expect("metrics sink poisoned")
        .is_some()
}

/// The attached metrics sink's path and progress, if any.
#[must_use]
pub fn metrics_sink_status() -> Option<MetricsSinkStatus> {
    METRICS_SINK
        .lock()
        .expect("metrics sink poisoned")
        .as_ref()
        .map(|s| MetricsSinkStatus {
            path: s.path.clone(),
            interval_secs: s.interval_secs,
            max_buckets: s.max_buckets,
            snapshots: s.snapshots,
        })
}

/// Offers the current virtual time to the metrics sink; a snapshot is
/// appended when the interval has elapsed. Cheap enough for event loops:
/// one relaxed atomic load when nothing is due (or no sink is attached).
#[inline]
pub fn metrics_tick(now_secs: f64) {
    // relaxed: monotone deadline pre-check only; writers re-check and
    // advance the deadline under the sink mutex.
    if now_secs < f64::from_bits(NEXT_DUE_BITS.load(Ordering::Relaxed)) {
        return;
    }
    let _ = write_metrics_snapshot(now_secs, false);
}

/// Appends a snapshot immediately, regardless of the interval (the
/// `POST /v1/obs` flush action and finalization use this).
pub fn force_metrics_snapshot(now_secs: f64) -> Result<bool, ExportError> {
    write_metrics_snapshot(now_secs, true)
}

fn write_metrics_snapshot(now_secs: f64, force: bool) -> Result<bool, ExportError> {
    let mut guard = METRICS_SINK.lock().expect("metrics sink poisoned");
    let Some(sink) = guard.as_mut() else {
        return Ok(false);
    };
    if !force && now_secs < sink.next_due_secs {
        return Ok(false);
    }
    let block = metrics_jsonl_at(Some(now_secs), Some(sink.max_buckets));
    let result = sink.file.write_all(block.as_bytes());
    match result {
        Ok(()) => {
            sink.snapshots += 1;
            sink.next_due_secs = now_secs + sink.interval_secs;
            // relaxed: hint only, see attach_metrics_sink.
            NEXT_DUE_BITS.store(sink.next_due_secs.to_bits(), Ordering::Relaxed);
            METRICS_SNAPSHOTS.inc();
            BYTES_WRITTEN.add(block.len() as u64);
            Ok(true)
        }
        Err(source) => {
            WRITE_ERRORS.inc();
            let path = sink.path.clone();
            *guard = None;
            // relaxed: hint only, see attach_metrics_sink.
            NEXT_DUE_BITS.store(NEVER_DUE_BITS, Ordering::Relaxed);
            Err(ExportError { path, source })
        }
    }
}

/// Writes a final snapshot at `now_secs`, syncs, and detaches the metrics
/// sink. Returns the file's path, or `None` when no sink was attached.
pub fn finalize_metrics_sink(now_secs: f64) -> Result<Option<PathBuf>, ExportError> {
    let mut guard = METRICS_SINK.lock().expect("metrics sink poisoned");
    let Some(mut sink) = guard.take() else {
        return Ok(None);
    };
    // relaxed: hint only, see attach_metrics_sink.
    NEXT_DUE_BITS.store(NEVER_DUE_BITS, Ordering::Relaxed);
    let block = metrics_jsonl_at(Some(now_secs), Some(sink.max_buckets));
    sink.file
        .write_all(block.as_bytes())
        .and_then(|()| sink.file.sync_all())
        .map_err(|source| ExportError {
            path: sink.path.clone(),
            source,
        })?;
    METRICS_SNAPSHOTS.inc();
    BYTES_WRITTEN.add(block.len() as u64);
    Ok(Some(sink.path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotated_paths_number_siblings() {
        assert_eq!(
            rotated_path(Path::new("/tmp/trace.json"), 1),
            Path::new("/tmp/trace.1.json")
        );
        assert_eq!(
            rotated_path(Path::new("/tmp/trace.json"), 2),
            Path::new("/tmp/trace.2.json")
        );
        assert_eq!(rotated_path(Path::new("trace"), 1), Path::new("trace.1"));
    }
}
