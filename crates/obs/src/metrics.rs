//! The metrics registry: counters, gauges and fixed-bucket histograms
//! addressed by static string keys.
//!
//! Handles are interned on first use and live for the process lifetime
//! (`&'static`), so hot paths can cache them in a `LazyLock`/`OnceLock`
//! and pay one relaxed atomic per update. Keys follow the
//! `<crate>.<subsystem>.<name>` convention documented in DESIGN.md §5.

use ones_sync::atomic::{AtomicU64, Ordering};
use ones_sync::Mutex;
use std::collections::BTreeMap;

/// A monotonic counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` (no-op while the level is `Off`).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::counters_enabled() {
            // relaxed: independent metric cell; scrapes tolerate lag.
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        // relaxed: independent metric cell; scrapes tolerate lag.
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins f64 gauge.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge (no-op while the level is `Off`).
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::counters_enabled() {
            // relaxed: independent metric cell; scrapes tolerate lag.
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> f64 {
        // relaxed: independent metric cell; scrapes tolerate lag.
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default histogram bucket upper bounds: a 1–2–5 ladder from 0.1 to 1e8,
/// sized for microsecond-denominated latencies (0.1 µs … 100 s) but
/// unit-agnostic.
pub const DEFAULT_BOUNDS: [f64; 28] = [
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 2e4,
    5e4, 1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8,
];

#[derive(Debug, Clone)]
struct HistState {
    /// `counts[i]` observations fell in `(bounds[i-1], bounds[i]]`; the
    /// final slot is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A fixed-bucket histogram with quantile extraction.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    state: Mutex<HistState>,
}

/// A point-in-time copy of a histogram's aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Estimated 50th percentile.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// `(upper_bound, cumulative_count)` per bucket, Prometheus-style: the
    /// count covers every observation `<= upper_bound`, and the final entry
    /// is the overflow bucket with bound [`f64::INFINITY`].
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Merges adjacent buckets down to at most `max_buckets` entries
    /// (scalar aggregates — count/sum/min/max and the pre-computed
    /// quantiles — are untouched).
    ///
    /// Because buckets are cumulative, merging is pure bound *selection*:
    /// dropping an intermediate bound folds its bucket into the next kept
    /// one without touching any count. The rule always keeps the overflow
    /// (`+Inf`) bound plus **both edges of the buckets containing p50, p95
    /// and p99**, then spends the remaining budget on evenly spaced
    /// bounds. Keeping both edges of a quantile's containing bucket means
    /// re-interpolating that quantile from the downsampled buckets walks
    /// the same `(lo, hi, seen, count)` numbers as the full histogram —
    /// the estimate is preserved exactly, not just to within one bucket.
    #[must_use]
    pub fn downsample(&self, max_buckets: usize) -> HistogramSnapshot {
        let n = self.buckets.len();
        if n <= max_buckets.max(1) {
            return self.clone();
        }
        let mut keep = std::collections::BTreeSet::new();
        keep.insert(n - 1);
        if self.count > 0 {
            for q in [0.50, 0.95, 0.99] {
                let target = q * self.count as f64;
                // First bucket whose cumulative count reaches the quantile
                // target: the containing bucket under the interpolation
                // rule in `Histogram::snapshot`.
                let i = self
                    .buckets
                    .iter()
                    .position(|&(_, cum)| cum as f64 >= target)
                    .unwrap_or(n - 1);
                keep.insert(i);
                if i > 0 {
                    keep.insert(i - 1);
                }
            }
        }
        let budget = max_buckets.max(keep.len());
        let spare = budget - keep.len();
        if spare > 0 {
            // Evenly spaced fill over the remaining index range.
            for k in 0..spare {
                let idx = (k + 1) * (n - 1) / (spare + 1);
                if keep.len() >= budget {
                    break;
                }
                keep.insert(idx);
            }
        }
        let buckets = keep.into_iter().map(|i| self.buckets[i]).collect();
        HistogramSnapshot {
            buckets,
            ..self.clone()
        }
    }
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds,
            state: Mutex::new(HistState {
                counts: vec![0; bounds.len() + 1],
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            }),
        }
    }

    /// Records one observation (no-op while the level is `Off`; NaN is
    /// dropped — it has no bucket).
    pub fn observe(&self, v: f64) {
        if !crate::counters_enabled() || v.is_nan() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        let mut s = self.state.lock().expect("histogram poisoned");
        s.counts[idx] += 1;
        s.count += 1;
        s.sum += v;
        s.min = s.min.min(v);
        s.max = s.max.max(v);
    }

    /// Observation count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.state.lock().expect("histogram poisoned").count
    }

    /// Aggregates and p50/p95/p99 estimates. Quantiles interpolate within
    /// the containing bucket, clamped to the observed min/max.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let s = self.state.lock().expect("histogram poisoned").clone();
        let quantile = |q: f64| -> f64 {
            if s.count == 0 {
                return 0.0;
            }
            let target = q * s.count as f64;
            let mut seen = 0.0;
            for (i, &c) in s.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let next = seen + c as f64;
                if next >= target {
                    let lo = if i == 0 { s.min } else { self.bounds[i - 1] };
                    let hi = if i == self.bounds.len() {
                        s.max
                    } else {
                        self.bounds[i]
                    };
                    let frac = ((target - seen) / c as f64).clamp(0.0, 1.0);
                    return (lo + frac * (hi - lo)).clamp(s.min, s.max);
                }
                seen = next;
            }
            s.max
        };
        let mut buckets = Vec::with_capacity(s.counts.len());
        let mut cumulative = 0u64;
        for (i, &c) in s.counts.iter().enumerate() {
            cumulative += c;
            let bound = if i == self.bounds.len() {
                f64::INFINITY
            } else {
                self.bounds[i]
            };
            buckets.push((bound, cumulative));
        }
        HistogramSnapshot {
            count: s.count,
            sum: s.sum,
            min: if s.count == 0 { 0.0 } else { s.min },
            max: if s.count == 0 { 0.0 } else { s.max },
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            buckets,
        }
    }

    fn reset(&self) {
        let mut s = self.state.lock().expect("histogram poisoned");
        s.counts.iter_mut().for_each(|c| *c = 0);
        s.count = 0;
        s.sum = 0.0;
        s.min = f64::INFINITY;
        s.max = f64::NEG_INFINITY;
    }
}

#[derive(Debug, Clone, Copy)]
enum Handle {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static REGISTRY: Mutex<BTreeMap<&'static str, Handle>> = Mutex::new(BTreeMap::new());

/// Interns the counter registered under `key`.
///
/// # Panics
/// Panics if `key` is already registered as a different metric kind.
#[must_use]
pub fn counter(key: &'static str) -> &'static Counter {
    let handle = {
        let mut reg = REGISTRY.lock().expect("metric registry poisoned");
        *reg.entry(key).or_insert_with(|| {
            Handle::Counter(Box::leak(Box::new(Counter {
                value: AtomicU64::new(0),
            })))
        })
    };
    match handle {
        Handle::Counter(c) => c,
        _ => panic!("metric key `{key}` is not a counter"),
    }
}

/// Interns the gauge registered under `key`.
///
/// # Panics
/// Panics if `key` is already registered as a different metric kind.
#[must_use]
pub fn gauge(key: &'static str) -> &'static Gauge {
    let handle = {
        let mut reg = REGISTRY.lock().expect("metric registry poisoned");
        *reg.entry(key).or_insert_with(|| {
            Handle::Gauge(Box::leak(Box::new(Gauge {
                bits: AtomicU64::new(0.0f64.to_bits()),
            })))
        })
    };
    match handle {
        Handle::Gauge(g) => g,
        _ => panic!("metric key `{key}` is not a gauge"),
    }
}

/// Interns the histogram registered under `key` (default 1–2–5 buckets).
///
/// # Panics
/// Panics if `key` is already registered as a different metric kind.
#[must_use]
pub fn histogram(key: &'static str) -> &'static Histogram {
    let handle = {
        let mut reg = REGISTRY.lock().expect("metric registry poisoned");
        *reg.entry(key).or_insert_with(|| {
            Handle::Histogram(Box::leak(Box::new(Histogram::new(&DEFAULT_BOUNDS))))
        })
    };
    match handle {
        Handle::Histogram(h) => h,
        _ => panic!("metric key `{key}` is not a histogram"),
    }
}

pub(crate) fn reset_metrics() {
    let reg = REGISTRY.lock().expect("metric registry poisoned");
    for handle in reg.values() {
        match handle {
            // relaxed: reset is not synchronised against concurrent
            // updates; callers quiesce recording first.
            Handle::Counter(c) => c.value.store(0, Ordering::Relaxed),
            // relaxed: same as the counter reset above.
            Handle::Gauge(g) => g.bits.store(0.0f64.to_bits(), Ordering::Relaxed),
            Handle::Histogram(h) => h.reset(),
        }
    }
}

/// The value part of a [`MetricSample`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram aggregates.
    Histogram(HistogramSnapshot),
}

/// One metric's key and current value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Registered key (`<crate>.<subsystem>.<name>`).
    pub key: &'static str,
    /// Current reading.
    pub value: MetricValue,
}

/// A point-in-time reading of every registered metric, in stable
/// alphabetical key order. Counters and gauges carry their current value;
/// histograms carry full aggregates including cumulative bucket counts
/// ([`HistogramSnapshot::buckets`]), so scrapers see the same state the
/// JSONL sink does.
#[must_use]
pub fn registry_snapshot() -> Vec<MetricSample> {
    let reg = REGISTRY.lock().expect("metric registry poisoned");
    reg.iter()
        .map(|(key, handle)| MetricSample {
            key,
            value: match handle {
                Handle::Counter(c) => MetricValue::Counter(c.value()),
                Handle::Gauge(g) => MetricValue::Gauge(g.value()),
                Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            },
        })
        .collect()
}

/// Alias for [`registry_snapshot`], kept for existing call sites.
#[must_use]
pub fn snapshot() -> Vec<MetricSample> {
    registry_snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = crate::test_level_lock();
        crate::set_level(crate::ObsLevel::Counters);
        let c = counter("obs.test.counter");
        let before = c.value();
        c.inc();
        c.add(4);
        assert_eq!(c.value(), before + 5);
        assert!(std::ptr::eq(c, counter("obs.test.counter")));
    }

    #[test]
    fn gauges_hold_last_value() {
        let _g = crate::test_level_lock();
        crate::set_level(crate::ObsLevel::Counters);
        let g = gauge("obs.test.gauge");
        g.set(2.5);
        assert_eq!(g.value(), 2.5);
        g.set(-1.0);
        assert_eq!(g.value(), -1.0);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let _g = crate::test_level_lock();
        crate::set_level(crate::ObsLevel::Counters);
        let h = histogram("obs.test.hist");
        h.reset();
        for i in 1..=1000u32 {
            h.observe(f64::from(i));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert!(s.p50 > 300.0 && s.p50 < 700.0, "p50 {}", s.p50);
        assert!(s.p99 > 800.0 && s.p99 <= 1000.0, "p99 {}", s.p99);
        assert!((s.sum - 500_500.0).abs() < 1e-6);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let _g = crate::test_level_lock();
        crate::set_level(crate::ObsLevel::Counters);
        let h = histogram("obs.test.hist_empty");
        h.reset();
        let s = h.snapshot();
        assert_eq!(
            (s.count, s.sum, s.min, s.max, s.p50),
            (0, 0.0, 0.0, 0.0, 0.0)
        );
    }

    #[test]
    fn off_level_drops_updates() {
        let _g = crate::test_level_lock();
        crate::set_level(crate::ObsLevel::Counters);
        let c = counter("obs.test.off_counter");
        let h = histogram("obs.test.off_hist");
        let g = gauge("obs.test.off_gauge");
        h.reset();
        let base = c.value();
        crate::set_level(crate::ObsLevel::Off);
        c.inc();
        g.set(9.0);
        h.observe(1.0);
        crate::set_level(crate::ObsLevel::Counters);
        assert_eq!(c.value(), base);
        assert_eq!(g.value(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn kind_mismatch_panics() {
        let _ = counter("obs.test.kind_clash");
        let _ = gauge("obs.test.kind_clash");
    }

    #[test]
    fn nan_observations_are_dropped() {
        let _g = crate::test_level_lock();
        crate::set_level(crate::ObsLevel::Counters);
        let h = histogram("obs.test.nan");
        h.reset();
        h.observe(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_infinity() {
        let _g = crate::test_level_lock();
        crate::set_level(crate::ObsLevel::Counters);
        let h = histogram("obs.test.buckets");
        h.reset();
        // One observation in (0.2, 0.5], two overflow beyond the last bound.
        h.observe(0.3);
        h.observe(2e8);
        h.observe(3e8);
        let s = h.snapshot();
        assert_eq!(s.buckets.len(), DEFAULT_BOUNDS.len() + 1);
        assert!(s
            .buckets
            .windows(2)
            .all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        let (last_bound, last_count) = *s.buckets.last().unwrap();
        assert!(last_bound.is_infinite());
        assert_eq!(last_count, s.count);
        let below_one = s.buckets.iter().find(|(b, _)| *b == 1.0).unwrap().1;
        assert_eq!(below_one, 1);
    }

    #[test]
    fn registry_snapshot_matches_snapshot() {
        let _g = crate::test_level_lock();
        crate::set_level(crate::ObsLevel::Counters);
        let _ = counter("obs.test.reg_snap");
        assert_eq!(registry_snapshot(), snapshot());
    }

    #[test]
    fn snapshot_lists_keys_in_order() {
        let _g = crate::test_level_lock();
        crate::set_level(crate::ObsLevel::Counters);
        let _ = counter("obs.test.a");
        let _ = counter("obs.test.b");
        let snap = snapshot();
        let keys: Vec<&str> = snap.iter().map(|s| s.key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert!(keys.contains(&"obs.test.a"));
    }
}
