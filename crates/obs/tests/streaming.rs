//! Streaming-sink tests: byte-equivalence between the in-memory and
//! chunked Chrome-trace writers, crash-safe mid-stream validity, the
//! drain-vs-drop recorder accounting, rotation, and the periodic
//! metrics-JSONL snapshots with downsampled histograms.
//!
//! These run in their own process (integration test binary), so flipping
//! the process-global level and attaching process-global sinks here
//! cannot disturb other test binaries.

use ones_sync::Mutex;
use serde_json::Value;
use std::path::PathBuf;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> ones_sync::MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(ones_sync::PoisonError::into_inner)
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ones-obs-streaming-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn counter_value(key: &'static str) -> u64 {
    ones_obs::counter(key).value()
}

/// A deterministic batch of virtual-clock events.
fn fixture_events(n: usize) -> Vec<ones_obs::SpanEvent> {
    ones_obs::set_level(ones_obs::ObsLevel::Full);
    ones_obs::reset();
    for i in 0..n {
        let t = i as f64;
        ones_obs::virtual_span(
            "epoch",
            "simulator",
            (i % 7) as u64,
            t,
            t + 0.5,
            vec![("batch", (64 + i as u64).into())],
        );
        ones_obs::virtual_instant("deploy", "simulator", (i % 3) as u64, t + 0.25, vec![]);
    }
    ones_obs::spans_snapshot()
}

#[test]
fn chunked_writer_is_byte_equivalent_to_in_memory() {
    let _g = lock();
    let events = fixture_events(100);
    let in_memory = ones_obs::chrome_trace_json();

    // Replay the exact same events through a chunked sink with a chunk
    // size that forces many partial flushes plus a non-empty tail.
    ones_obs::clear_spans();
    let path = temp_path("equiv.json");
    ones_obs::attach_trace_sink(&path, 7).unwrap();
    for event in events {
        ones_obs::record_event(event);
    }
    ones_obs::finalize_trace_sink().unwrap();
    let streamed = std::fs::read_to_string(&path).unwrap();
    assert_eq!(
        streamed, in_memory,
        "chunked file must be byte-identical to the in-memory serialisation"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn file_is_valid_json_at_every_flush_boundary() {
    let _g = lock();
    ones_obs::set_level(ones_obs::ObsLevel::Full);
    ones_obs::reset();
    let path = temp_path("midstream.json");
    ones_obs::attach_trace_sink(&path, 5).unwrap();

    // 12 events: two full chunks flushed, two still buffered.
    for i in 0..12u64 {
        ones_obs::virtual_instant("mark", "obs.test", i, i as f64, vec![]);
    }
    let mid: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap())
        .expect("file must parse without finalize — this is the crash-safety guarantee");
    let mid_events = mid.get("traceEvents").and_then(Value::as_array).unwrap();
    // 2 metadata records + 10 flushed events; the buffered tail is absent.
    assert_eq!(mid_events.len(), 12);

    ones_obs::finalize_trace_sink().unwrap();
    let done: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(
        done.get("traceEvents")
            .and_then(Value::as_array)
            .unwrap()
            .len(),
        14
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn attached_sink_drains_instead_of_dropping_past_the_cap() {
    let _g = lock();
    ones_obs::set_level(ones_obs::ObsLevel::Full);
    ones_obs::reset();
    ones_obs::set_recorder_cap_for_tests(10);
    let path = temp_path("drain.json");
    ones_obs::attach_trace_sink(&path, 8).unwrap();

    let recorded_before = counter_value("obs.recorder.recorded_spans");
    let dropped_before = counter_value("obs.recorder.dropped_spans");
    let written_before = counter_value("obs.sink.events_written");
    for i in 0..1000u64 {
        ones_obs::virtual_instant("mark", "obs.test", 0, i as f64, vec![]);
    }
    ones_obs::finalize_trace_sink().unwrap();
    ones_obs::reset_recorder_cap_for_tests();

    let recorded = counter_value("obs.recorder.recorded_spans") - recorded_before;
    let dropped = counter_value("obs.recorder.dropped_spans") - dropped_before;
    let written = counter_value("obs.sink.events_written") - written_before;
    assert_eq!(recorded, 1000);
    assert_eq!(dropped, 0, "a draining sink must never drop");
    assert_eq!(
        written + dropped,
        recorded,
        "emitted + dropped must equal recorded"
    );
    // Peak buffer stays at the chunk size, far below the cap.
    let high_water = ones_obs::gauge("obs.recorder.buffer_high_water").value();
    assert!(high_water <= 8.0, "high water {high_water} exceeds chunk");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn no_sink_configuration_keeps_the_cap_and_accounts_for_drops() {
    let _g = lock();
    ones_obs::set_level(ones_obs::ObsLevel::Full);
    ones_obs::reset();
    ones_obs::set_recorder_cap_for_tests(10);

    let recorded_before = counter_value("obs.recorder.recorded_spans");
    let dropped_before = counter_value("obs.recorder.dropped_spans");
    for i in 0..25u64 {
        ones_obs::virtual_instant("mark", "obs.test", 0, i as f64, vec![]);
    }
    let buffered = ones_obs::spans_snapshot().len() as u64;
    let recorded = counter_value("obs.recorder.recorded_spans") - recorded_before;
    let dropped = counter_value("obs.recorder.dropped_spans") - dropped_before;
    ones_obs::reset_recorder_cap_for_tests();
    ones_obs::clear_spans();

    assert_eq!((buffered, dropped, recorded), (10, 15, 25));
    assert_eq!(
        buffered + dropped,
        recorded,
        "emitted + dropped must equal recorded"
    );
}

#[test]
fn rotation_seals_each_file_independently() {
    let _g = lock();
    ones_obs::set_level(ones_obs::ObsLevel::Full);
    ones_obs::reset();
    let path = temp_path("rotate.json");
    ones_obs::attach_trace_sink(&path, 4).unwrap();
    for i in 0..6u64 {
        ones_obs::virtual_instant("m", "obs.test", 0, i as f64, vec![]);
    }
    let sealed = ones_obs::rotate_trace_sink().unwrap().unwrap();
    assert_eq!(sealed, path);
    for i in 6..9u64 {
        ones_obs::virtual_instant("m", "obs.test", 0, i as f64, vec![]);
    }
    let status = ones_obs::trace_sink_status().unwrap();
    assert_eq!(status.rotations, 1);
    let second = status.path.clone();
    assert_ne!(second, path);
    ones_obs::finalize_trace_sink().unwrap();

    let first: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let next: Value = serde_json::from_str(&std::fs::read_to_string(&second).unwrap()).unwrap();
    // 2 metadata + 6 events, then 2 metadata + 3 events.
    assert_eq!(
        first
            .get("traceEvents")
            .and_then(Value::as_array)
            .unwrap()
            .len(),
        8
    );
    assert_eq!(
        next.get("traceEvents")
            .and_then(Value::as_array)
            .unwrap()
            .len(),
        5
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&second);
}

#[test]
fn metrics_snapshots_stream_at_the_interval_and_downsample() {
    let _g = lock();
    ones_obs::set_level(ones_obs::ObsLevel::Counters);
    ones_obs::reset();
    let h = ones_obs::histogram("obs.test.stream_hist");
    for i in 1..=1000 {
        h.observe(f64::from(i) * 37.0);
    }
    let path = temp_path("metrics.jsonl");
    ones_obs::attach_metrics_sink(&path, 10.0, 6).unwrap();
    ones_obs::metrics_tick(0.0); // due immediately
    ones_obs::metrics_tick(5.0); // not due
    ones_obs::metrics_tick(10.0); // due
    ones_obs::finalize_metrics_sink(12.0).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let mut stamps = std::collections::BTreeSet::new();
    let mut hist_lines = 0;
    for line in text.lines() {
        let v: Value = serde_json::from_str(line).expect("valid JSONL line");
        let t = v
            .get("t")
            .and_then(Value::as_f64)
            .expect("every streamed line carries t");
        stamps.insert(t.to_bits());
        if v.get("key").and_then(Value::as_str) == Some("obs.test.stream_hist") {
            hist_lines += 1;
            let buckets = v.get("buckets").and_then(Value::as_array).unwrap();
            assert!(
                buckets.len() <= 6,
                "downsampled line has {} buckets",
                buckets.len()
            );
            assert_eq!(
                buckets.last().unwrap().get("le").and_then(Value::as_str),
                Some("+Inf")
            );
        }
    }
    assert_eq!(
        stamps.len(),
        3,
        "expected snapshots at t=0, t=10 and the final t=12"
    );
    assert_eq!(hist_lines, 3);
    assert!(!ones_obs::metrics_sink_attached());
    let _ = std::fs::remove_file(&path);
}

/// Re-interpolates a quantile from a (possibly downsampled) cumulative
/// bucket array, mirroring the rule in `Histogram::snapshot`.
fn quantile_from_buckets(s: &ones_obs::HistogramSnapshot, q: f64) -> f64 {
    if s.count == 0 {
        return 0.0;
    }
    let target = q * s.count as f64;
    let mut seen = 0.0f64;
    let mut lo = s.min;
    for (i, &(bound, cum)) in s.buckets.iter().enumerate() {
        let c = cum as f64 - seen;
        let hi = if bound.is_finite() { bound } else { s.max };
        if c > 0.0 {
            if cum as f64 >= target {
                let frac = ((target - seen) / c).clamp(0.0, 1.0);
                return (lo + frac * (hi - lo)).clamp(s.min, s.max);
            }
            seen = cum as f64;
        }
        let _ = i;
        lo = hi;
    }
    s.max
}

#[test]
fn downsampled_quantiles_stay_within_one_bucket_of_exact() {
    let _g = lock();
    ones_obs::set_level(ones_obs::ObsLevel::Counters);
    ones_obs::reset();
    let h = ones_obs::histogram("obs.test.downsample_hist");
    // A heavy-tailed spread across many of the 1–2–5 buckets.
    for i in 1..=5000u32 {
        h.observe(f64::from(i) * f64::from(i) * 0.01);
    }
    let full = h.snapshot();
    for max_buckets in [4usize, 6, 8, 12] {
        let down = full.downsample(max_buckets);
        assert!(down.buckets.len() <= max_buckets.max(7));
        for (q, exact) in [(0.50, full.p50), (0.95, full.p95), (0.99, full.p99)] {
            let approx = quantile_from_buckets(&down, q);
            // The containing bucket's width bounds the error; keeping both
            // of its edges makes the estimate exact, which is stricter.
            let containing_width = containing_bucket_width(&full, exact);
            assert!(
                (approx - exact).abs() <= containing_width,
                "q{q}: approx {approx} vs exact {exact} (width {containing_width})"
            );
            assert!(
                (approx - exact).abs() < 1e-9,
                "edge-preserving downsampling should reproduce q{q} exactly"
            );
        }
    }
}

fn containing_bucket_width(s: &ones_obs::HistogramSnapshot, v: f64) -> f64 {
    let mut lo = s.min;
    for &(bound, _) in &s.buckets {
        let hi = if bound.is_finite() { bound } else { s.max };
        if v <= hi {
            return (hi - lo).abs().max(1e-12);
        }
        lo = hi;
    }
    (s.max - lo).abs().max(1e-12)
}
