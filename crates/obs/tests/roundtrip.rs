//! Round-trip tests: the hand-rolled Chrome-trace and JSONL exports must
//! parse back through the serde_json shim with the recorded values intact.
//!
//! These run in their own process (integration test binary), so flipping
//! the process-global level here cannot disturb other test binaries.

use ones_sync::Mutex;
use serde_json::Value;

// The three tests share the process-global recorder; serialise them.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> ones_sync::MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(ones_sync::PoisonError::into_inner)
}

fn recorded_fixture() {
    ones_obs::set_level(ones_obs::ObsLevel::Full);
    ones_obs::reset();
    ones_obs::counter("test.fixture.counter").add(42);
    ones_obs::gauge("test.fixture.gauge").set(-2.5);
    let h = ones_obs::histogram("test.fixture.hist");
    for v in [1.0, 2.0, 3.0, 4.0] {
        h.observe(v);
    }
    {
        let _s = ones_obs::span!("simulator", "outer")
            .with_arg("n", 7u64)
            .with_arg("label", "a \"quoted\" value")
            .with_arg("x", 0.5f64);
    }
    ones_obs::virtual_span(
        "epoch",
        "simulator",
        3,
        10.0,
        12.5,
        vec![("batch", 256u64.into())],
    );
    ones_obs::virtual_instant("deploy", "simulator", 0, 11.0, vec![]);
}

#[test]
fn chrome_trace_round_trips_through_serde_json() {
    let _g = lock();
    recorded_fixture();
    let json = ones_obs::chrome_trace_json();
    let value: Value = serde_json::from_str(&json).expect("valid JSON");
    let events = value
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");

    // Two process_name metadata records label the clocks.
    let meta: Vec<&Value> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
        .collect();
    assert_eq!(meta.len(), 2);
    assert!(meta.iter().any(|m| {
        m.get("pid").and_then(Value::as_u64) == Some(1)
            && m.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                .is_some_and(|n| n.contains("virtual"))
    }));

    // The wall span with its escaped string argument.
    let outer = events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some("outer"))
        .expect("outer span exported");
    assert_eq!(outer.get("ph").and_then(Value::as_str), Some("X"));
    assert_eq!(outer.get("cat").and_then(Value::as_str), Some("simulator"));
    assert_eq!(outer.get("pid").and_then(Value::as_u64), Some(0));
    assert!(outer.get("ts").and_then(Value::as_f64).is_some());
    assert!(outer.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
    let args = outer.get("args").expect("args object");
    assert_eq!(args.get("n").and_then(Value::as_u64), Some(7));
    assert_eq!(
        args.get("label").and_then(Value::as_str),
        Some("a \"quoted\" value")
    );
    assert_eq!(args.get("x").and_then(Value::as_f64), Some(0.5));

    // The virtual span lands on pid 1 / tid 3 with µs timestamps.
    let epoch = events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some("epoch"))
        .expect("epoch span exported");
    assert_eq!(epoch.get("pid").and_then(Value::as_u64), Some(1));
    assert_eq!(epoch.get("tid").and_then(Value::as_u64), Some(3));
    assert_eq!(epoch.get("ts").and_then(Value::as_f64), Some(10.0e6));
    assert_eq!(epoch.get("dur").and_then(Value::as_f64), Some(2.5e6));

    // The instant has a scope and no duration.
    let deploy = events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some("deploy"))
        .expect("deploy instant exported");
    assert_eq!(deploy.get("ph").and_then(Value::as_str), Some("i"));
    assert_eq!(deploy.get("s").and_then(Value::as_str), Some("t"));
    assert!(deploy.get("dur").is_none());
}

#[test]
fn metrics_jsonl_round_trips_through_serde_json() {
    let _g = lock();
    recorded_fixture();
    let jsonl = ones_obs::metrics_jsonl();
    let lines: Vec<Value> = jsonl
        .lines()
        .map(|l| serde_json::from_str(l).expect("each line is valid JSON"))
        .collect();
    assert!(!lines.is_empty());

    let by_key = |key: &str| {
        lines
            .iter()
            .find(|v| v.get("key").and_then(Value::as_str) == Some(key))
            .unwrap_or_else(|| panic!("{key} missing from JSONL"))
    };

    let c = by_key("test.fixture.counter");
    assert_eq!(c.get("type").and_then(Value::as_str), Some("counter"));
    assert_eq!(c.get("value").and_then(Value::as_u64), Some(42));

    let g = by_key("test.fixture.gauge");
    assert_eq!(g.get("type").and_then(Value::as_str), Some("gauge"));
    assert_eq!(g.get("value").and_then(Value::as_f64), Some(-2.5));

    let h = by_key("test.fixture.hist");
    assert_eq!(h.get("type").and_then(Value::as_str), Some("histogram"));
    assert_eq!(h.get("count").and_then(Value::as_u64), Some(4));
    assert_eq!(h.get("sum").and_then(Value::as_f64), Some(10.0));
    assert_eq!(h.get("min").and_then(Value::as_f64), Some(1.0));
    assert_eq!(h.get("max").and_then(Value::as_f64), Some(4.0));
    let p50 = h.get("p50").and_then(Value::as_f64).unwrap();
    let p99 = h.get("p99").and_then(Value::as_f64).unwrap();
    assert!((1.0..=4.0).contains(&p50));
    assert!(p50 <= p99 && p99 <= 4.0);

    // Keys are emitted in sorted order.
    let keys: Vec<&str> = lines
        .iter()
        .filter_map(|v| v.get("key").and_then(Value::as_str))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted);
}

#[test]
fn file_writers_produce_parseable_files() {
    let _g = lock();
    recorded_fixture();
    let dir = std::env::temp_dir().join("ones-obs-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let metrics_path = dir.join("metrics.jsonl");
    ones_obs::write_chrome_trace(&trace_path).unwrap();
    ones_obs::write_metrics_jsonl(&metrics_path).unwrap();
    let trace: Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    assert!(trace.get("traceEvents").is_some());
    for line in std::fs::read_to_string(&metrics_path).unwrap().lines() {
        let _: Value = serde_json::from_str(line).expect("valid JSONL line");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
