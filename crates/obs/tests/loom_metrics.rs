//! Model-checked interleavings of the metrics registry: concurrent
//! interning of one key must yield one handle (no lost updates through
//! split identities), and histogram aggregates must stay internally
//! consistent under concurrent observation.
//!
//! Compiled only under `RUSTFLAGS="--cfg ones_loom"`; run via
//! `RUN_LOOM=1 scripts/ci.sh`. The registry is process-global, so each
//! iteration starts with `reset()` and the tests serialise on the obs
//! test-level lock (model explorations must not overlap).
#![cfg(ones_loom)]

use ones_sync::model::{model_with, thread, Options};

fn opts(preemption_bound: u32) -> Options {
    Options {
        preemption_bound,
        ..Options::default()
    }
}

/// Two threads intern the *same* counter key and increment it. In every
/// interleaving the registry must hand both threads the same cell:
/// exactly 2 lands, never a count split across two identities.
#[test]
fn counter_interning_race_loses_no_update() {
    let _guard = ones_obs::test_level_lock();
    let iterations = model_with(opts(3), || {
        ones_obs::set_level(ones_obs::ObsLevel::Counters);
        ones_obs::reset();

        let handles: Vec<_> = (0..2)
            .map(|_| {
                thread::spawn(|| {
                    ones_obs::counter("loom.interning.counter").inc();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        assert_eq!(
            ones_obs::counter("loom.interning.counter").value(),
            2,
            "an increment was lost — interning split the key across cells"
        );
    });
    assert!(
        iterations >= 10,
        "expected a real interleaving space, explored only {iterations}"
    );
}

/// Two threads observe into one histogram. After both land, count, sum,
/// min/max and the cumulative bucket counts must describe the same two
/// observations — no interleaving may tear the aggregate.
#[test]
fn histogram_publication_stays_consistent() {
    let _guard = ones_obs::test_level_lock();
    let iterations = model_with(opts(3), || {
        ones_obs::set_level(ones_obs::ObsLevel::Counters);
        ones_obs::reset();

        let t1 = thread::spawn(|| ones_obs::histogram("loom.hist").observe(1.0));
        let t2 = thread::spawn(|| ones_obs::histogram("loom.hist").observe(3.0));
        t1.join().unwrap();
        t2.join().unwrap();

        let snap = ones_obs::histogram("loom.hist").snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 4.0);
        assert_eq!((snap.min, snap.max), (1.0, 3.0));
        let (_, cumulative) = *snap.buckets.last().expect("overflow bucket");
        assert_eq!(cumulative, 2, "buckets disagree with count");
        assert!(snap.p50 >= snap.min && snap.p99 <= snap.max);
    });
    assert!(
        iterations >= 10,
        "expected a real interleaving space, explored only {iterations}"
    );
}
