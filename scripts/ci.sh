#!/usr/bin/env bash
# Repository CI gate: tier-1 build + tests, lint, formatting.
#
#   scripts/ci.sh              # build, test, ones-lint, clippy, fmt,
#                              # trace-replay and daemon smoke
#   RUN_LOOM=1 scripts/ci.sh   # also model-check the loom tests in
#                              # crates/{evo,obs,oned}/tests/loom_*.rs
#                              # under RUSTFLAGS="--cfg ones_loom"
#   RUN_TSAN=1 scripts/ci.sh   # also run ThreadSanitizer over the
#                              # concurrent test suites (needs a nightly
#                              # toolchain with rust-src; skipped with a
#                              # notice otherwise)
#   RUN_MIRI=1 scripts/ci.sh   # also run Miri over the sync-facade and
#                              # cache tests (needs `cargo +nightly miri`;
#                              # skipped with a notice otherwise)
#   RUN_BENCH=1 scripts/ci.sh  # also run the evolution micro-bench, the
#                              # observability overhead bench, the
#                              # trace-replay macro-bench and the ones-d
#                              # service bench, emitting
#                              # BENCH_evolution.json,
#                              # BENCH_observability.json,
#                              # BENCH_trace_replay.json and
#                              # BENCH_service.json at the repo root
#
# Everything runs offline against the in-repo shim crates (shims/); no
# network access or external dependencies are required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test (workspace)"
cargo test -q

echo "==> ones-lint (concurrency & determinism rules; lint.allow for exceptions)"
cargo run -q --release -p ones-lint

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> trace-replay smoke (every scheduler on a Philly-style trace)"
for sched in ones drl tiresias optimus fifo; do
    out="$(./target/release/ones-sim --scheduler "$sched" \
        --trace-source philly --jobs 12 --gpus 16 --rate-secs 20 --seed 7 \
        --json)"
    if echo "$out" | grep -q '"completed_jobs": 0,'; then
        echo "FAIL: $sched completed no jobs on the philly trace" >&2
        exit 1
    fi
    if ! echo "$out" | grep -qE '"killed_jobs": [1-9]'; then
        echo "FAIL: $sched reported no killed jobs on a trace with kills" >&2
        exit 1
    fi
    echo "    $sched OK ($(echo "$out" | grep -o '"completed_jobs": [0-9]*') \
$(echo "$out" | grep -o '"killed_jobs": [0-9]*'))"
done

echo "==> daemon smoke (ones-d API round trip over loopback)"
DLOG="$(mktemp)"
./target/release/ones-d --port 0 --gpus 16 --scheduler ones >"$DLOG" 2>&1 &
DPID=$!
trap 'kill "$DPID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    grep -q 'listening on' "$DLOG" && break
    sleep 0.1
done
ADDR="$(sed -n 's/.*listening on //p' "$DLOG" | head -1)"
if [[ -z "$ADDR" ]]; then
    echo "FAIL: ones-d never reported a listen address" >&2
    cat "$DLOG" >&2
    exit 1
fi
CTL="./target/release/ones-ctl --addr $ADDR"
$CTL health >/dev/null
$CTL submit --model ResNet18 --dataset CIFAR10 --dataset-size 20000 \
    --batch 256 --gpus 2 --name smoke | grep -q '"id"'
$CTL jobs | grep -q '"smoke"'
$CTL cluster | grep -q '"scheduler":"ONES"'
for _ in $(seq 1 100); do
    $CTL metrics | grep -q 'simulator_engine_events' && break
    sleep 0.1
done
$CTL metrics | grep -q 'evo_search_generations'
$CTL drain | grep -q '"draining":true'
kill -TERM "$DPID"
if ! wait "$DPID"; then
    echo "FAIL: ones-d did not exit cleanly on SIGTERM" >&2
    cat "$DLOG" >&2
    exit 1
fi
trap - EXIT
rm -f "$DLOG"
echo "    ones-d OK ($ADDR)"

echo "==> crash-recovery smoke (SIGKILL ones-d mid-replay, restart from --state-file)"
CRASH_DIR="$(mktemp -d)"
CLOG="$CRASH_DIR/ones-d.log"
STATE="$CRASH_DIR/state.json"
run_replay() { # extra args...
    ./target/release/ones-d --port 0 --gpus 16 --scheduler ones \
        --trace-source philly --jobs 12 --rate-secs 10 --seed 7 --sched-seed 1 \
        --state-file "$STATE" "$@" >"$CLOG" 2>&1 &
    DPID=$!
    for _ in $(seq 1 100); do
        grep -q 'listening on' "$CLOG" && break
        sleep 0.1
    done
    ADDR="$(sed -n 's/.*listening on //p' "$CLOG" | head -1)"
    if [[ -z "$ADDR" ]]; then
        echo "FAIL: ones-d never reported a listen address" >&2
        cat "$CLOG" >&2
        exit 1
    fi
    CTL="./target/release/ones-ctl --addr $ADDR"
}
# Throttled victim: let a few events land, then SIGKILL mid-replay.
run_replay --step-delay-ms 25 --events-per-batch 4
trap 'kill -9 "$DPID" 2>/dev/null || true; rm -rf "$CRASH_DIR"' EXIT
for _ in $(seq 1 200); do
    $CTL cluster 2>/dev/null | grep -qE '"events_next_seq":[1-9]' && break
    sleep 0.05
done
kill -9 "$DPID"
wait "$DPID" 2>/dev/null || true
if [[ ! -s "$STATE" ]]; then
    echo "FAIL: no persisted state file after SIGKILL" >&2
    exit 1
fi
# Restart from the snapshot and replay to the fixpoint.
run_replay
trap 'kill -9 "$DPID" 2>/dev/null || true; rm -rf "$CRASH_DIR"' EXIT
grep -q 'recovering 12 job(s)' "$CLOG" || {
    echo "FAIL: restart did not recover from the state file" >&2
    cat "$CLOG" >&2
    exit 1
}
DONE=0
for _ in $(seq 1 600); do
    C="$($CTL cluster 2>/dev/null || true)"
    COMPLETED="$(echo "$C" | grep -o '"completed":[0-9]*' | grep -o '[0-9]*$' || echo 0)"
    KILLED="$(echo "$C" | grep -o '"killed":[0-9]*' | grep -o '[0-9]*$' || echo 0)"
    if [[ $((COMPLETED + KILLED)) -eq 12 ]]; then
        DONE=1
        break
    fi
    sleep 0.1
done
if [[ "$DONE" != "1" ]]; then
    echo "FAIL: recovered replay never reached the fixpoint" >&2
    exit 1
fi
kill -9 "$DPID" 2>/dev/null || true
wait "$DPID" 2>/dev/null || true
trap - EXIT
rm -rf "$CRASH_DIR"
echo "    crash recovery OK ($COMPLETED completed, $KILLED killed after restart)"

if [[ "${RUN_LOOM:-0}" == "1" ]]; then
    echo "==> loom model checking (RUSTFLAGS=--cfg ones_loom)"
    # Each test explores every thread interleaving of its protocol up to
    # the preemption bound (ONES_LOOM_* env knobs override the defaults;
    # see shims/loom). A counterexample panics with the failing schedule.
    RUSTFLAGS="--cfg ones_loom" cargo test -q -p ones-evo --test loom_cache
    RUSTFLAGS="--cfg ones_loom" cargo test -q -p ones-obs --test loom_metrics
    RUSTFLAGS="--cfg ones_loom" cargo test -q -p ones-d --test loom_state
    echo "    loom OK"
fi

if [[ "${RUN_TSAN:-0}" == "1" ]]; then
    echo "==> ThreadSanitizer (concurrent suites)"
    # -Z sanitizer needs nightly plus rust-src for -Z build-std; this box
    # may have neither, so detect and skip rather than fail.
    if rustup run nightly rustc --version >/dev/null 2>&1 \
        && [[ -d "$(rustup run nightly rustc --print sysroot)/lib/rustlib/src/rust/library" ]]; then
        RUSTFLAGS="-Z sanitizer=thread" cargo +nightly test -Z build-std \
            --target "$(rustc -vV | sed -n 's/^host: //p')" \
            -p ones-sync -p ones-evo -p ones-obs -p ones-d
        echo "    tsan OK"
    else
        echo "    SKIP: nightly toolchain with rust-src not available"
    fi
fi

if [[ "${RUN_MIRI:-0}" == "1" ]]; then
    echo "==> Miri (sync facade + cache)"
    if cargo +nightly miri --version >/dev/null 2>&1; then
        cargo +nightly miri test -p ones-sync -p ones-evo cache
        echo "    miri OK"
    else
        echo "    SKIP: cargo +nightly miri not available"
    fi
fi

if [[ "${RUN_BENCH:-0}" == "1" ]]; then
    echo "==> evolution micro-bench (BENCH_evolution.json)"
    # Scoring-phase regression gate: the 1 024-GPU delta-scoring speedup
    # over the cached full rescore must stay within 30% of the committed
    # baseline, and never drop below the 5x acceptance floor. The bench
    # itself enforces the floor (non-zero exit on regression).
    floor="5.0"
    if [[ -f BENCH_evolution.json ]]; then
        committed="$(grep -o '"scoring_speedup_1024_delta_vs_cache": *[0-9.eE+-]*' \
            BENCH_evolution.json | grep -o '[0-9.eE+-]*$' || true)"
        if [[ -n "${committed:-}" ]]; then
            floor="$(awk -v c="$committed" \
                'BEGIN { f = 0.7 * c; if (f < 5.0) f = 5.0; printf "%.2f", f }')"
            echo "    committed speedup ${committed}x -> gate floor ${floor}x"
        fi
    fi
    BENCH_JSON="$PWD/BENCH_evolution.json" BENCH_MIN_SCORING_SPEEDUP="$floor" \
        cargo bench -p ones-bench --bench evolution

    echo "==> observability overhead bench (BENCH_observability.json)"
    BENCH_JSON="$PWD/BENCH_observability.json" cargo bench -p ones-bench --bench observability

    echo "==> trace-replay macro-bench (BENCH_trace_replay.json)"
    BENCH_JSON="$PWD/BENCH_trace_replay.json" cargo bench -p ones-bench --bench trace_replay

    echo "==> ones-d service bench (BENCH_service.json)"
    BENCH_JSON="$PWD/BENCH_service.json" cargo bench -p ones-bench --bench service
fi

echo "CI OK"
