#!/usr/bin/env bash
# Repository CI gate: tier-1 build + tests, lint, formatting.
#
#   scripts/ci.sh              # build, test, clippy, fmt, trace-replay smoke
#   RUN_BENCH=1 scripts/ci.sh  # also run the evolution micro-bench, the
#                              # observability overhead bench and the
#                              # trace-replay macro-bench, emitting
#                              # BENCH_evolution.json,
#                              # BENCH_observability.json and
#                              # BENCH_trace_replay.json at the repo root
#
# Everything runs offline against the in-repo shim crates (shims/); no
# network access or external dependencies are required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace)"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> trace-replay smoke (every scheduler on a Philly-style trace)"
for sched in ones drl tiresias optimus fifo; do
    out="$(./target/release/ones-sim --scheduler "$sched" \
        --trace-source philly --jobs 12 --gpus 16 --rate-secs 20 --seed 7 \
        --json)"
    if echo "$out" | grep -q '"completed_jobs": 0,'; then
        echo "FAIL: $sched completed no jobs on the philly trace" >&2
        exit 1
    fi
    if ! echo "$out" | grep -qE '"killed_jobs": [1-9]'; then
        echo "FAIL: $sched reported no killed jobs on a trace with kills" >&2
        exit 1
    fi
    echo "    $sched OK ($(echo "$out" | grep -o '"completed_jobs": [0-9]*') \
$(echo "$out" | grep -o '"killed_jobs": [0-9]*'))"
done

if [[ "${RUN_BENCH:-0}" == "1" ]]; then
    echo "==> evolution micro-bench (BENCH_evolution.json)"
    BENCH_JSON="$PWD/BENCH_evolution.json" cargo bench -p ones-bench --bench evolution

    echo "==> observability overhead bench (BENCH_observability.json)"
    BENCH_JSON="$PWD/BENCH_observability.json" cargo bench -p ones-bench --bench observability

    echo "==> trace-replay macro-bench (BENCH_trace_replay.json)"
    BENCH_JSON="$PWD/BENCH_trace_replay.json" cargo bench -p ones-bench --bench trace_replay
fi

echo "CI OK"
