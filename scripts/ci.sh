#!/usr/bin/env bash
# Repository CI gate: tier-1 build + tests, lint, formatting.
#
#   scripts/ci.sh              # build, test, clippy, fmt
#   RUN_BENCH=1 scripts/ci.sh  # also run the evolution micro-bench and the
#                              # observability overhead bench, emitting
#                              # BENCH_evolution.json and
#                              # BENCH_observability.json at the repo root
#
# Everything runs offline against the in-repo shim crates (shims/); no
# network access or external dependencies are required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace)"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

if [[ "${RUN_BENCH:-0}" == "1" ]]; then
    echo "==> evolution micro-bench (BENCH_evolution.json)"
    BENCH_JSON="$PWD/BENCH_evolution.json" cargo bench -p ones-bench --bench evolution

    echo "==> observability overhead bench (BENCH_observability.json)"
    BENCH_JSON="$PWD/BENCH_observability.json" cargo bench -p ones-bench --bench observability
fi

echo "CI OK"
