//! JSON text output: compact and 2-space pretty printers.

use serde::Value;

pub(crate) fn compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

pub(crate) fn pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

/// `indent = None` → compact; `Some(n)` → pretty with `n`-space steps.
fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` is the shortest representation that round-trips,
                // keeping a `.0` suffix on integral values.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
