//! Recursive-descent JSON parser producing a `serde::Value` tree.

use crate::Error;
use serde::Value;

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!(
                "invalid literal at byte {}, expected `{word}`",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of JSON input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in JSON string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(Error::msg("unterminated JSON string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::msg("unterminated escape sequence"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hex = self
                    .bytes
                    .get(self.pos..self.pos + 4)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                let code =
                    u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
                self.pos += 4;
                // Surrogate pairs are not produced by our printer; reject
                // them rather than silently mis-decoding.
                char::from_u32(code).ok_or_else(|| Error::msg("unsupported \\u code point"))?
            }
            other => return Err(Error::msg(format!("invalid escape `\\{}`", other as char))),
        })
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number characters");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}
