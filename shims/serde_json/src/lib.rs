//! In-repo stand-in for `serde_json` (see `shims/README.md`).
//!
//! Provides the text encoding of the shimmed `serde::Value` tree: a
//! recursive-descent JSON parser, compact and pretty printers, and the
//! subset of the public API this workspace calls (`to_string_pretty`,
//! `from_str`, `to_value`, `json!`).

mod parse;
mod print;

pub use serde::Value;

/// JSON (de)serialisation error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub(crate) fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Renders any serialisable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialises to compact JSON text.
///
/// # Errors
/// Never fails in this shim; the `Result` mirrors the upstream signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.to_value()))
}

/// Serialises to human-readable, 2-space-indented JSON text.
///
/// # Errors
/// Never fails in this shim; the `Result` mirrors the upstream signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.to_value()))
}

/// Parses JSON text into any deserialisable type.
///
/// # Errors
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Builds a [`Value`] literal.
///
/// Supports `null`, array literals of expressions, object literals with
/// string-literal keys and expression values, and bare expressions
/// (converted via [`to_value`]). Nest objects by building inner values
/// first and splicing them in as expressions.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$element) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = json!({
            "name": "ones",
            "gpus": 64u32,
            "ratio": 0.25f64,
            "flag": true,
            "none": Value::Null,
            "xs": vec![1u64, 2, 3]
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back.get("name").unwrap().as_str(), Some("ones"));
        assert_eq!(back.get("gpus").unwrap().as_u64(), Some(64));
        assert_eq!(back.get("ratio").unwrap().as_f64(), Some(0.25));
        assert_eq!(back.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(back.get("none"), Some(&Value::Null));
        assert_eq!(back.get("xs").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn parses_escapes_and_nested_structures() {
        let text = r#"{"a": [1, -2, 3.5e2, "x\n\"y\" A"], "b": {"c": null}}"#;
        let v: Value = from_str(text).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_i64(), Some(-2));
        assert_eq!(arr[2].as_f64(), Some(350.0));
        assert_eq!(arr[3].as_str(), Some("x\n\"y\" A"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("{}trailing").is_err());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 123_456_789.123_456_78, -0.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
    }
}
