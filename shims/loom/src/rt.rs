//! The model-checking runtime: one serialized execution per schedule,
//! explored depth-first with a preemption bound.
//!
//! Every *visible operation* (atomic access, lock acquire/release, spawn,
//! join, yield) is a decision point: the scheduler picks which model
//! thread performs its next operation. Exactly one model thread runs at a
//! time — threads are real OS threads, but a token (the `active` id)
//! serializes them, so an execution is one total order of visible
//! operations. The explorer re-runs the closure once per schedule,
//! backtracking over the recorded decisions ([`Decision`]) to the deepest
//! point with an untried alternative whose cost stays within the
//! preemption bound (CHESS-style context-bounded search).

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

/// Panic payload used to unwind model threads when an iteration is torn
/// down early (deadlock, runaway op budget, or a sibling thread's
/// failure). The thread wrapper swallows it; it is never a test failure
/// by itself.
pub(crate) struct AbortIteration;

/// How a model thread may currently proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    /// May be scheduled.
    Runnable,
    /// Waiting for a lock keyed by address.
    BlockedLock(usize),
    /// Waiting for another model thread to finish.
    BlockedJoin(usize),
    /// Done (normally or by panic).
    Finished,
}

/// Shared-lock state for one `Mutex`/`RwLock`, keyed by object address.
#[derive(Debug, Default, Clone, Copy)]
struct Lock {
    writer: bool,
    readers: usize,
}

/// Lock-acquisition mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Access {
    /// `Mutex::lock` / `RwLock::write`.
    Exclusive,
    /// `RwLock::read`.
    Shared,
}

struct ThreadState {
    run: Run,
    /// Panic message, if the thread's closure panicked.
    panic: Option<String>,
    /// Whether a `JoinHandle::join` observed the panic (a consumed panic
    /// is the joiner's to re-raise, not the model's).
    panic_consumed: bool,
}

/// One scheduling decision: which runnable thread performed the next
/// visible operation, out of which candidates.
#[derive(Debug, Clone)]
pub(crate) struct Decision {
    /// Candidate thread ids in exploration order (the previously active
    /// thread first when runnable, then the rest ascending).
    pub candidates: Vec<usize>,
    /// Index into `candidates` that this execution took.
    pub chosen: usize,
    /// Id of the thread that was active when the decision was made.
    pub current: usize,
    /// Whether `current` was itself runnable (choosing someone else then
    /// costs a preemption).
    pub current_runnable: bool,
    /// Preemptions spent on the path before this decision.
    pub preemptions_before: u32,
}

pub(crate) struct ExecState {
    threads: Vec<ThreadState>,
    active: usize,
    /// Schedule prefix to replay: chosen thread id per decision.
    prefix: Vec<usize>,
    trace: Vec<Decision>,
    preemptions: u32,
    locks: HashMap<usize, Lock>,
    aborted: bool,
    /// Why the iteration was torn down, if abnormally.
    abort_reason: Option<String>,
    ops: u64,
}

/// One serialized execution (a single schedule). Shared by every model
/// thread of the iteration via `Arc`.
pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    cvar: Condvar,
    /// Visible-operation budget per iteration; beyond it the model is
    /// declared runaway and the iteration aborts loudly.
    max_ops: u64,
    /// OS handles of spawned model threads, joined at iteration end.
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Thread-local model context: set while a model thread runs user code.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub exec: Arc<Execution>,
    pub id: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The calling thread's model context, if it is a model thread.
pub(crate) fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(c: Option<Ctx>) {
    CTX.with(|cell| *cell.borrow_mut() = c);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Execution {
    fn new(prefix: Vec<usize>, max_ops: u64) -> Self {
        Execution {
            state: StdMutex::new(ExecState {
                threads: vec![ThreadState {
                    run: Run::Runnable,
                    panic: None,
                    panic_consumed: false,
                }],
                active: 0,
                prefix,
                trace: Vec::new(),
                preemptions: 0,
                locks: HashMap::new(),
                aborted: false,
                abort_reason: None,
                ops: 0,
            }),
            cvar: Condvar::new(),
            max_ops,
            handles: StdMutex::new(Vec::new()),
        }
    }

    /// Locks the scheduler state, recovering from poison: state-lock
    /// poisoning only happens while an iteration is already unwinding,
    /// and the structure stays consistent because mutations are
    /// small and guarded.
    fn lock_state(&self) -> StdMutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn abort(&self, st: &mut ExecState, reason: String) {
        if !st.aborted {
            st.aborted = true;
            st.abort_reason = Some(reason);
        }
        self.cvar.notify_all();
    }

    /// Picks the next thread to run and records the decision. Must be
    /// called by the active thread (or a finishing one).
    fn schedule_next(&self, me: usize, st: &mut ExecState) {
        if st.aborted {
            return;
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.run == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|t| t.run == Run::Finished) {
                // Execution complete; wake anything still draining.
                self.cvar.notify_all();
            } else {
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.run != Run::Finished)
                    .map(|(i, t)| format!("thread {i} {:?}", t.run))
                    .collect();
                self.abort(
                    st,
                    format!("deadlock: no runnable thread ({})", blocked.join(", ")),
                );
            }
            return;
        }
        let current_runnable = runnable.contains(&me);
        let mut candidates = Vec::with_capacity(runnable.len());
        if current_runnable {
            candidates.push(me);
        }
        candidates.extend(runnable.iter().copied().filter(|&t| t != me));
        let pos = st.trace.len();
        let chosen_idx = if pos < st.prefix.len() {
            let want = st.prefix[pos];
            match candidates.iter().position(|&c| c == want) {
                Some(i) => i,
                None => {
                    self.abort(
                        st,
                        format!(
                            "replay divergence at decision {pos}: thread {want} not runnable \
                             (model closure must be deterministic up to scheduling)"
                        ),
                    );
                    return;
                }
            }
        } else {
            0
        };
        let chosen = candidates[chosen_idx];
        let preemptions_before = st.preemptions;
        if current_runnable && chosen != me {
            st.preemptions += 1;
        }
        st.trace.push(Decision {
            candidates,
            chosen: chosen_idx,
            current: me,
            current_runnable,
            preemptions_before,
        });
        st.active = chosen;
        self.cvar.notify_all();
    }

    /// Blocks until this thread holds the token and is runnable. Panics
    /// with [`AbortIteration`] if the iteration is torn down meanwhile.
    fn wait_for_token<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, ExecState>,
        me: usize,
    ) -> StdMutexGuard<'a, ExecState> {
        loop {
            if st.aborted {
                drop(st);
                std::panic::panic_any(AbortIteration);
            }
            if st.active == me && st.threads[me].run == Run::Runnable {
                return st;
            }
            st = self.cvar.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// One visible operation: yield the token for a scheduling decision,
    /// then return holding it (and the state lock) so the caller performs
    /// the operation serialized. No-op during unwinding — a panicking
    /// thread keeps the token until its wrapper finishes it.
    pub(crate) fn yield_op(&self, me: usize) -> Option<StdMutexGuard<'_, ExecState>> {
        if std::thread::panicking() {
            return None;
        }
        let mut st = self.lock_state();
        st.ops += 1;
        if st.ops > self.max_ops {
            let max = self.max_ops;
            self.abort(
                &mut st,
                format!("model exceeded {max} visible operations in one execution"),
            );
            drop(st);
            std::panic::panic_any(AbortIteration);
        }
        self.schedule_next(me, &mut st);
        Some(self.wait_for_token(st, me))
    }

    /// Acquires the model-level lock at `addr`, blocking (in model time)
    /// while unavailable.
    pub(crate) fn acquire(&self, me: usize, addr: usize, access: Access) {
        let Some(mut st) = self.yield_op(me) else {
            return;
        };
        loop {
            let lock = st.locks.entry(addr).or_default();
            let free = match access {
                Access::Exclusive => !lock.writer && lock.readers == 0,
                Access::Shared => !lock.writer,
            };
            if free {
                match access {
                    Access::Exclusive => lock.writer = true,
                    Access::Shared => lock.readers += 1,
                }
                return;
            }
            st.threads[me].run = Run::BlockedLock(addr);
            self.schedule_next(me, &mut st);
            st = self.wait_for_token(st, me);
        }
    }

    /// Releases the model-level lock at `addr` and wakes its waiters.
    pub(crate) fn release(&self, me: usize, addr: usize, access: Access) {
        // During unwinding, release without scheduling: the panicking
        // thread still holds the token, so the mutation stays serialized.
        let mut st = if std::thread::panicking() {
            self.lock_state()
        } else {
            match self.yield_op(me) {
                Some(st) => st,
                None => self.lock_state(),
            }
        };
        let lock = st.locks.entry(addr).or_default();
        match access {
            Access::Exclusive => lock.writer = false,
            Access::Shared => lock.readers = lock.readers.saturating_sub(1),
        }
        for t in &mut st.threads {
            if t.run == Run::BlockedLock(addr) {
                t.run = Run::Runnable;
            }
        }
        self.cvar.notify_all();
    }

    /// Registers a new runnable model thread, returning its id.
    fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.threads.push(ThreadState {
            run: Run::Runnable,
            panic: None,
            panic_consumed: false,
        });
        st.threads.len() - 1
    }

    /// First wait of a freshly spawned model thread: it may not touch
    /// user code until a decision schedules it.
    fn wait_first(&self, me: usize) {
        let st = self.lock_state();
        drop(self.wait_for_token(st, me));
    }

    /// Marks `me` finished, wakes joiners and hands the token onward.
    fn finish(&self, me: usize, panic: Option<String>) {
        let mut st = self.lock_state();
        st.threads[me].run = Run::Finished;
        st.threads[me].panic = panic;
        for t in &mut st.threads {
            if t.run == Run::BlockedJoin(me) {
                t.run = Run::Runnable;
            }
        }
        if st.aborted {
            self.cvar.notify_all();
        } else {
            self.schedule_next(me, &mut st);
        }
    }

    /// Blocks (in model time) until thread `target` finishes; returns its
    /// panic message if it panicked. Used by `JoinHandle::join`.
    pub(crate) fn join_thread(&self, me: usize, target: usize) -> Option<String> {
        let mut st = self.yield_op(me)?;
        loop {
            if st.threads[target].run == Run::Finished {
                st.threads[target].panic_consumed = true;
                return st.threads[target].panic.clone();
            }
            st.threads[me].run = Run::BlockedJoin(target);
            self.schedule_next(me, &mut st);
            st = self.wait_for_token(st, me);
        }
    }

    fn trace_string(&self) -> String {
        let st = self.lock_state();
        let steps: Vec<String> = st
            .trace
            .iter()
            .map(|d| d.candidates[d.chosen].to_string())
            .collect();
        format!("[{}]", steps.join(" "))
    }
}

/// Spawns a model thread running `f`. See `loom::thread::spawn`.
pub(crate) fn spawn_model_thread<F, T>(f: F) -> (usize, Arc<StdMutex<Option<T>>>, Arc<Execution>)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Ctx { exec, id: parent } = ctx().expect("loom::thread::spawn outside loom::model");
    // Spawning is itself a visible operation.
    drop(exec.yield_op(parent));
    let id = exec.register_thread();
    let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let slot2 = Arc::clone(&slot);
    let exec2 = Arc::clone(&exec);
    let os = std::thread::Builder::new()
        .name(format!("loom-{id}"))
        .spawn(move || {
            set_ctx(Some(Ctx {
                exec: Arc::clone(&exec2),
                id,
            }));
            exec2.wait_first(id);
            let result = catch_unwind(AssertUnwindSafe(f));
            let panic = match result {
                Ok(v) => {
                    *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                    None
                }
                Err(payload) => {
                    if payload.downcast_ref::<AbortIteration>().is_some() {
                        None
                    } else {
                        Some(panic_message(payload.as_ref()))
                    }
                }
            };
            exec2.finish(id, panic);
            set_ctx(None);
        })
        .expect("spawn loom model thread");
    exec.handles
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(os);
    (id, slot, exec)
}

/// Exploration options for [`explore`].
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Maximum context switches away from a runnable thread per
    /// execution (CHESS-style context bound). Forced switches — the
    /// active thread blocked or finished — are free.
    pub preemption_bound: u32,
    /// Hard cap on explored executions; exceeding it fails the test so a
    /// model that outgrew its budget is caught rather than silently
    /// truncated.
    pub max_iterations: u64,
    /// Visible-operation budget per execution (runaway-model backstop).
    pub max_ops: u64,
}

impl Default for Options {
    fn default() -> Self {
        let env_u = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Options {
            preemption_bound: u32::try_from(env_u("ONES_LOOM_PREEMPTION_BOUND", 3)).unwrap_or(3),
            max_iterations: env_u("ONES_LOOM_MAX_ITERATIONS", 200_000),
            max_ops: env_u("ONES_LOOM_MAX_OPS", 100_000),
        }
    }
}

/// The deepest-first backtracking step: the next schedule prefix to run,
/// or `None` when the (bounded) space is exhausted.
fn next_prefix(trace: &[Decision], bound: u32) -> Option<Vec<usize>> {
    for d in (0..trace.len()).rev() {
        let dec = &trace[d];
        for idx in dec.chosen + 1..dec.candidates.len() {
            let cost = u32::from(dec.current_runnable && dec.candidates[idx] != dec.current);
            if dec.preemptions_before + cost <= bound {
                let mut prefix: Vec<usize> =
                    trace[..d].iter().map(|p| p.candidates[p.chosen]).collect();
                prefix.push(dec.candidates[idx]);
                return Some(prefix);
            }
        }
    }
    None
}

/// Runs `f` once per schedule until the bounded interleaving space is
/// exhausted, panicking on the first execution where a model thread
/// panics (assertion failure) or the threads deadlock. Returns the number
/// of executions explored.
pub fn explore<F>(opts: Options, f: F) -> u64
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(
        ctx().is_none(),
        "nested loom::model is not supported by the shim"
    );
    let mut prefix: Vec<usize> = Vec::new();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        assert!(
            iterations <= opts.max_iterations,
            "loom shim: exceeded {} executions (raise ONES_LOOM_MAX_ITERATIONS or \
             lower ONES_LOOM_PREEMPTION_BOUND)",
            opts.max_iterations
        );
        let exec = Arc::new(Execution::new(std::mem::take(&mut prefix), opts.max_ops));
        set_ctx(Some(Ctx {
            exec: Arc::clone(&exec),
            id: 0,
        }));
        let result = catch_unwind(AssertUnwindSafe(&f));
        let main_panic = match &result {
            Ok(()) => None,
            Err(payload) => {
                if payload.downcast_ref::<AbortIteration>().is_some() {
                    None
                } else {
                    Some(panic_message(payload.as_ref()))
                }
            }
        };
        exec.finish(0, main_panic.clone());
        set_ctx(None);
        // Drain every model thread: after `finish` handed the token on,
        // the remaining threads run to completion (or unwind on abort).
        let handles =
            std::mem::take(&mut *exec.handles.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handles {
            let _ = h.join();
        }
        let (abort_reason, failure, trace) = {
            let st = exec.lock_state();
            let failure = st
                .threads
                .iter()
                .enumerate()
                .find(|(_, t)| t.panic.is_some() && !t.panic_consumed)
                .map(|(i, t)| (i, t.panic.clone().unwrap_or_default()));
            (st.abort_reason.clone(), failure, st.trace.clone())
        };
        if let Some(reason) = abort_reason {
            // Replay-divergence / deadlock / runaway: always fatal.
            panic!(
                "loom shim: {reason}\n  execution {iterations}, schedule {}",
                exec.trace_string()
            );
        }
        if let Some((tid, msg)) = failure {
            panic!(
                "loom shim: thread {tid} panicked: {msg}\n  execution {iterations}, schedule {}",
                exec.trace_string()
            );
        }
        match next_prefix(&trace, opts.preemption_bound) {
            Some(p) => prefix = p,
            None => break,
        }
    }
    if std::env::var("ONES_LOOM_LOG").is_ok() {
        eprintln!("loom shim: explored {iterations} executions");
    }
    iterations
}
