//! Model-aware `std::thread` subset: [`spawn`], [`JoinHandle`],
//! [`yield_now`]. Usable only inside [`crate::model`].

use crate::rt;
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

/// Handle to a spawned model thread (mirrors `std::thread::JoinHandle`).
pub struct JoinHandle<T> {
    id: usize,
    slot: Arc<StdMutex<Option<T>>>,
    exec: Arc<rt::Execution>,
}

impl<T> JoinHandle<T> {
    /// Blocks (in model time) until the thread finishes. Mirrors
    /// `std::thread::JoinHandle::join`: a panicking thread yields `Err`
    /// with the panic message as the payload.
    ///
    /// # Errors
    /// Returns the joined thread's panic payload if it panicked.
    pub fn join(self) -> std::thread::Result<T> {
        let me = rt::ctx().map_or(0, |c| c.id);
        match self.exec.join_thread(me, self.id) {
            Some(panic_msg) => Err(Box::new(panic_msg)),
            None => match self
                .slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
            {
                Some(v) => Ok(v),
                None => Err(Box::new("loom model thread produced no value".to_string())),
            },
        }
    }
}

/// Spawns a model thread. Panics outside [`crate::model`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (id, slot, exec) = rt::spawn_model_thread(f);
    JoinHandle { id, slot, exec }
}

/// A pure scheduling point: lets the explorer switch threads here.
/// Outside a model this is a no-op.
pub fn yield_now() {
    if let Some(c) = rt::ctx() {
        drop(c.exec.yield_op(c.id));
    }
}
