//! Model-aware `std::sync` subset: [`Mutex`], [`RwLock`] and the
//! [`atomic`] types.
//!
//! Every type here wraps its `std::sync` counterpart and is a drop-in
//! replacement **outside** a model (`const` constructors included, so
//! statics keep working). Inside [`crate::model`] each operation becomes
//! a visible operation of the explored execution: acquisition order,
//! blocking and atomic access order are all scheduler decisions.
//!
//! Two documented divergences from `std` under a model: lock poisoning is
//! not modeled (`lock()` recovers and returns `Ok`, like real loom), and
//! atomic operations explore sequentially consistent interleavings only —
//! the shim finds ordering-of-operations bugs, not weak-memory reorderings.

use crate::rt::{self, Access};
use std::sync::{LockResult, PoisonError};

/// Identity of a lock inside one execution: its address. Locks shared
/// between model threads live behind `Arc`/statics and do not move.
fn addr<T: ?Sized>(v: &T) -> usize {
    std::ptr::from_ref(v) as *const () as usize
}

fn model_ctx() -> Option<rt::Ctx> {
    rt::ctx()
}

/// Mutual exclusion wrapping [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex::lock`]; releases on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(rt::Ctx, usize)>,
}

impl<T> Mutex<T> {
    /// Creates a mutex (usable in statics).
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex. Inside a model, acquisition is a visible
    /// operation and contention blocks in model time.
    ///
    /// # Errors
    /// Outside a model, propagates `std` poisoning. Inside a model,
    /// always `Ok` (poisoning is not modeled).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(ctx) = model_ctx() {
            let a = addr(self);
            ctx.exec.acquire(ctx.id, a, Access::Exclusive);
            let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            return Ok(MutexGuard {
                inner: Some(guard),
                model: Some((ctx, a)),
            });
        }
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                inner: Some(g),
                model: None,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                inner: Some(p.into_inner()),
                model: None,
            })),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the data guard before the model-level release so no other
        // model thread can observe the std lock still held.
        self.inner = None;
        if let Some((ctx, a)) = self.model.take() {
            ctx.exec.release(ctx.id, a, Access::Exclusive);
        }
    }
}

/// Reader-writer lock wrapping [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: Option<(rt::Ctx, usize)>,
}

/// Guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: Option<(rt::Ctx, usize)>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock (usable in statics).
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    ///
    /// # Errors
    /// Outside a model, propagates `std` poisoning. Inside a model,
    /// always `Ok`.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if let Some(ctx) = model_ctx() {
            let a = addr(self);
            ctx.exec.acquire(ctx.id, a, Access::Shared);
            let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
            return Ok(RwLockReadGuard {
                inner: Some(guard),
                model: Some((ctx, a)),
            });
        }
        match self.inner.read() {
            Ok(g) => Ok(RwLockReadGuard {
                inner: Some(g),
                model: None,
            }),
            Err(p) => Err(PoisonError::new(RwLockReadGuard {
                inner: Some(p.into_inner()),
                model: None,
            })),
        }
    }

    /// Acquires exclusive write access.
    ///
    /// # Errors
    /// Outside a model, propagates `std` poisoning. Inside a model,
    /// always `Ok`.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if let Some(ctx) = model_ctx() {
            let a = addr(self);
            ctx.exec.acquire(ctx.id, a, Access::Exclusive);
            let guard = self.inner.write().unwrap_or_else(PoisonError::into_inner);
            return Ok(RwLockWriteGuard {
                inner: Some(guard),
                model: Some((ctx, a)),
            });
        }
        match self.inner.write() {
            Ok(g) => Ok(RwLockWriteGuard {
                inner: Some(g),
                model: None,
            }),
            Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                inner: Some(p.into_inner()),
                model: None,
            })),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some((ctx, a)) = self.model.take() {
            ctx.exec.release(ctx.id, a, Access::Shared);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some((ctx, a)) = self.model.take() {
            ctx.exec.release(ctx.id, a, Access::Exclusive);
        }
    }
}

/// Model-aware atomics. Inside a model every access is a visible
/// operation explored under sequential consistency; outside, each call
/// passes straight through to `std` with the caller's ordering.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    /// One scheduling point before an atomic access.
    fn visible() {
        if !std::thread::panicking() {
            if let Some(ctx) = crate::rt::ctx() {
                drop(ctx.exec.yield_op(ctx.id));
            }
        }
    }

    macro_rules! atomic_int {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates the atomic (usable in statics).
                #[must_use]
                pub const fn new(v: $ty) -> Self {
                    $name { inner: std::sync::atomic::$std::new(v) }
                }

                /// Atomic load.
                #[must_use]
                pub fn load(&self, order: Ordering) -> $ty {
                    visible();
                    self.inner.load(order)
                }

                /// Atomic store.
                pub fn store(&self, v: $ty, order: Ordering) {
                    visible();
                    self.inner.store(v, order);
                }

                /// Atomic swap, returning the previous value.
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    visible();
                    self.inner.swap(v, order)
                }

                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    visible();
                    self.inner.fetch_add(v, order)
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    visible();
                    self.inner.fetch_sub(v, order)
                }

                /// Atomic compare-exchange.
                ///
                /// # Errors
                /// Returns the current value when it differs from
                /// `current`.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    visible();
                    self.inner.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    atomic_int!(
        /// Model-aware `AtomicU8`.
        AtomicU8,
        AtomicU8,
        u8
    );
    atomic_int!(
        /// Model-aware `AtomicU32`.
        AtomicU32,
        AtomicU32,
        u32
    );
    atomic_int!(
        /// Model-aware `AtomicU64`.
        AtomicU64,
        AtomicU64,
        u64
    );
    atomic_int!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize,
        AtomicUsize,
        usize
    );

    /// Model-aware `AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates the atomic (usable in statics).
        #[must_use]
        pub const fn new(v: bool) -> Self {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Atomic load.
        #[must_use]
        pub fn load(&self, order: Ordering) -> bool {
            visible();
            self.inner.load(order)
        }

        /// Atomic store.
        pub fn store(&self, v: bool, order: Ordering) {
            visible();
            self.inner.store(v, order);
        }

        /// Atomic swap, returning the previous value.
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            visible();
            self.inner.swap(v, order)
        }
    }
}

/// Shared ownership: re-exported from `std` unchanged. The shim explores
/// sequentially consistent executions, where `Arc`'s reference counting
/// needs no extra modeling.
pub use std::sync::Arc;
