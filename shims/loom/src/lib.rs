//! In-repo stand-in for the `loom` crate (see `shims/README.md`):
//! bounded exhaustive exploration of thread interleavings.
//!
//! [`model`] runs a closure once per distinct schedule of its *visible
//! operations* (atomic accesses, lock acquires/releases, spawns, joins,
//! yields), exploring the space depth-first with a CHESS-style
//! **preemption bound**: within one execution the scheduler switches away
//! from a runnable thread at most `preemption_bound` times (forced
//! switches — the active thread blocked or finished — are free). For the
//! two-to-three-thread models in this repository that covers every
//! interleaving reachable with up to N preemptions, which is where
//! protocol bugs live (CHESS: most concurrency bugs manifest within two
//! preemptions).
//!
//! Differences from upstream loom, by design of a ~zero-dependency shim:
//!
//! * **Sequential consistency only.** Atomics are explored as one total
//!   order of operations; `Ordering` arguments are accepted but not used
//!   to generate weak-memory reorderings. The shim finds interleaving
//!   bugs (lost updates, stale republish, broken accounting), not
//!   relaxed-memory bugs — ThreadSanitizer covers those in CI when the
//!   toolchain allows.
//! * **No `UnsafeCell` modeling / no causality checking.** Data under
//!   test must go through the [`sync`] types.
//! * **Model types degrade gracefully outside [`model`]**: they behave
//!   exactly like their `std::sync` counterparts (same `const`
//!   constructors, same `LockResult` signatures), which lets the
//!   `ones-sync` facade switch the whole workspace onto these types under
//!   `--cfg ones_loom` while only the model tests actually explore.
//!
//! A failing execution panics with the schedule (the chosen thread id per
//! decision) so the report is reproducible; executions are replayed
//! deterministically from that prefix.
//!
//! Environment knobs: `ONES_LOOM_PREEMPTION_BOUND` (default 3),
//! `ONES_LOOM_MAX_ITERATIONS` (default 200 000, exceeded = test failure),
//! `ONES_LOOM_MAX_OPS` (per-execution visible-op budget, default
//! 100 000), `ONES_LOOM_LOG` (print the execution count).

mod rt;
pub mod sync;
pub mod thread;

pub use rt::Options;

/// Explores every schedule of `f` within the default [`Options`]
/// (environment-overridable), panicking on the first failing execution.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    rt::explore(Options::default(), f);
}

/// [`model`] with explicit exploration options; returns the number of
/// executions explored.
pub fn model_with<F>(opts: Options, f: F) -> u64
where
    F: Fn() + Send + Sync + 'static,
{
    rt::explore(opts, f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex, RwLock};
    use super::*;

    fn opts(bound: u32) -> Options {
        Options {
            preemption_bound: bound,
            max_iterations: 1_000_000,
            max_ops: 100_000,
        }
    }

    #[test]
    fn explores_more_than_one_schedule() {
        let n = model_with(opts(2), || {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || {
                a2.store(1, Ordering::SeqCst);
            });
            let _ = a.load(Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 1);
        });
        assert!(n > 1, "expected >1 executions, got {n}");
    }

    #[test]
    fn finds_lost_update_with_non_atomic_rmw() {
        // load-then-store on two threads must lose an update in SOME
        // interleaving; the model must find it.
        let found = std::panic::catch_unwind(|| {
            model_with(opts(2), || {
                let a = Arc::new(AtomicU64::new(0));
                let t = {
                    let a = Arc::clone(&a);
                    thread::spawn(move || {
                        let v = a.load(Ordering::SeqCst);
                        a.store(v + 1, Ordering::SeqCst);
                    })
                };
                let v = a.load(Ordering::SeqCst);
                a.store(v + 1, Ordering::SeqCst);
                t.join().unwrap();
                assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(found.is_err(), "the lost-update interleaving must be found");
    }

    #[test]
    fn mutex_protects_a_read_modify_write() {
        // The same RMW under a mutex is race-free: every schedule passes.
        model_with(opts(2), || {
            let m = Arc::new(Mutex::new(0u64));
            let t = {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    let mut g = m.lock().unwrap();
                    *g += 1;
                })
            };
            {
                let mut g = m.lock().unwrap();
                *g += 1;
            }
            t.join().unwrap();
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    #[test]
    fn fetch_add_is_atomic() {
        model_with(opts(2), || {
            let a = Arc::new(AtomicU64::new(0));
            let t = {
                let a = Arc::clone(&a);
                thread::spawn(move || {
                    a.fetch_add(1, Ordering::SeqCst);
                })
            };
            a.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn rwlock_readers_see_complete_writes() {
        model_with(opts(2), || {
            let l = Arc::new(RwLock::new((0u64, 0u64)));
            let t = {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    let mut g = l.write().unwrap();
                    g.0 = 1;
                    g.1 = 1;
                })
            };
            {
                let g = l.read().unwrap();
                // Both fields written under one write guard: a reader
                // never sees them torn.
                assert_eq!(g.0, g.1);
            }
            t.join().unwrap();
        });
    }

    #[test]
    fn join_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            model_with(opts(0), || {
                let t = thread::spawn(|| panic!("inner failure"));
                // Not consuming the panic: the model reports it.
                let _ = t.join();
                panic!("outer sees it via join");
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn types_work_outside_a_model() {
        // Facade compatibility: same code path must behave std-like with
        // no model running.
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        static TABLE: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        COUNTER.fetch_add(3, Ordering::Relaxed);
        assert_eq!(COUNTER.load(Ordering::Relaxed), 3);
        TABLE.lock().unwrap().push(7);
        assert_eq!(TABLE.lock().unwrap().len(), 1);
        let rw = RwLock::new(5u32);
        assert_eq!(*rw.read().unwrap(), 5);
        *rw.write().unwrap() = 6;
        assert_eq!(*rw.read().unwrap(), 6);
    }

    #[test]
    fn preemption_bound_limits_exploration() {
        let run = |bound| {
            model_with(opts(bound), || {
                let a = Arc::new(AtomicU64::new(0));
                let t = {
                    let a = Arc::clone(&a);
                    thread::spawn(move || {
                        for _ in 0..3 {
                            a.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                };
                for _ in 0..3 {
                    a.fetch_add(1, Ordering::SeqCst);
                }
                t.join().unwrap();
                assert_eq!(a.load(Ordering::SeqCst), 6);
            })
        };
        let (zero, one, two) = (run(0), run(1), run(2));
        assert!(zero < one && one < two, "{zero} {one} {two}");
    }
}
