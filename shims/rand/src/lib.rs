//! In-repo stand-in for the `rand` crate, 0.8 API subset
//! (see `shims/README.md`).
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded through
//! SplitMix64 — deterministic, fast and statistically sound, but **not**
//! bit-compatible with upstream rand's ChaCha12-based `StdRng`. Nothing
//! in this workspace depends on the upstream bitstream: consumers need
//! reproducibility for a fixed seed (which any fixed algorithm gives)
//! and distributional quality (covered by the statistical tests in
//! `ones-simcore` and `ones-stats`).

/// Error type mirroring `rand::Error`; never produced by this shim's
/// deterministic generators.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (rand 0.8 shape).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; infallible for deterministic generators.
    ///
    /// # Errors
    /// Never fails for this shim's generators.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (the only constructor this
    /// workspace uses).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`f64` → uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range, e.g. `rng.gen_range(0..n)`.
    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1) on the dyadic grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait UniformRange {
    /// The element type produced.
    type Output;
    /// Draws one value from `rng` uniformly over the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer sampling on `[0, n)` by rejection (Lemire-style
/// threshold on the low word).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl UniformRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl UniformRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty gen_range");
        start + (end - start) * f64::sample(rng)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Not bit-compatible with upstream rand's `StdRng`; see the crate
    /// docs for why that is acceptable here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through SplitMix64, as the xoshiro authors
            // recommend, so nearby seeds yield unrelated states.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let i = rng.gen_range(0..10usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&x));
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
