//! In-repo stand-in for the `serde` crate (see `shims/README.md`).
//!
//! Real serde is a zero-copy visitor framework; this shim instead models
//! serialisation as conversion to and from a JSON-like [`Value`] tree:
//!
//! * [`Serialize::to_value`] renders a type into a [`Value`];
//! * [`Deserialize::from_value`] rebuilds the type from a [`Value`].
//!
//! The derive macros re-exported from `serde_derive` generate those two
//! methods for plain structs and enums. `serde_json` (also shimmed)
//! handles the text encoding of [`Value`].

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::Value;

/// Deserialisation error: a plain message, matching the way this
/// workspace consumes serde errors (`.to_string()` / `Display`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`], failing with a message on shape
    /// or type mismatch.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Looks up a named field in an object body (derive-macro helper).
pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value.as_u64().ok_or_else(|| {
                    DeError::custom(format!(
                        "expected unsigned integer, got {}",
                        value.kind()
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_u64()
            .ok_or_else(|| DeError::custom(format!("expected u64, got {}", value.kind())))
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let n = u64::from_value(value)?;
        usize::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value.as_i64().ok_or_else(|| {
                    DeError::custom(format!("expected integer, got {}", value.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32);

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_i64()
            .ok_or_else(|| DeError::custom(format!("expected i64, got {}", value.kind())))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let n = i64::from_value(value)?;
        isize::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, got {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::custom(format!(
                "expected 2-element array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::custom(format!(
                "expected 3-element array, got {}",
                other.kind()
            ))),
        }
    }
}

/// Maps serialise as JSON objects; scalar keys become their string form.
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&key_from_string(k))?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

fn key_to_string(key: &Value) -> String {
    match key {
        Value::Str(s) => s.clone(),
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Float(x) => x.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key kind: {}", other.kind()),
    }
}

/// Reinterprets an object key: numeric-looking strings deserialise as
/// numbers so integer-keyed maps round-trip.
fn key_from_string(key: &str) -> Value {
    if let Ok(n) = key.parse::<u64>() {
        Value::UInt(n)
    } else if let Ok(n) = key.parse::<i64>() {
        Value::Int(n)
    } else {
        Value::Str(key.to_string())
    }
}

/// Identity impls so a pre-built [`Value`] can flow through generic
/// serialisation entry points (e.g. `serde_json::to_string_pretty`).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
