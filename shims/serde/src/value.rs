//! The JSON-like value tree all (de)serialisation goes through.

/// A dynamically typed value, mirroring the JSON data model with
/// separate signed/unsigned integer variants so `u64` round-trips
/// losslessly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `None`).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating-point numbers; non-finite values print as `null`.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered key/value list (insertion order is
    /// preserved, which keeps emitted JSON stable).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name of the variant for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object body, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array body, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string body, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (integers widen).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Non-negative integer view.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Signed integer view.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Boolean view.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}
