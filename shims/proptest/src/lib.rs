//! In-repo stand-in for `proptest` (see `shims/README.md`).
//!
//! A deliberately small property-testing harness: strategies are plain
//! generators (no shrinking), every test draws its cases from a
//! deterministic RNG seeded by the test's module path, and failures
//! panic with the failing case number so a run is reproducible by
//! construction. The macro surface (`proptest!`, `prop_assert!`,
//! `prop_assert_eq!`) matches the subset used by this workspace's test
//! suites.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Per-test configuration (`cases` is the only knob this workspace
/// uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a property failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; carries the assertion message.
    Fail(String),
    /// The case was rejected (unused by this workspace, kept for shape).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure from any message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject(msg) => write!(f, "rejected: {msg}"),
        }
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG cases are drawn from (public so the
/// `proptest!` macro expansion can name it).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the stream from a test identifier (stable across runs).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// A value generator. Unlike real proptest there is no shrinking: a
/// failing case reports its case number, and determinism makes reruns
/// reproduce it.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Simplified regex strategies: string literals of the shape
/// `[a-z]{m,n}` (single character class, bounded repetition) generate
/// matching strings — the only regex form this workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi, min_len, max_len) = parse_simple_class(self).unwrap_or_else(|| {
            panic!("proptest shim supports only `[x-y]{{m,n}}` string patterns, got {self:?}")
        });
        let len = rng.0.gen_range(min_len..=max_len);
        (0..len)
            .map(|_| rng.0.gen_range(u32::from(lo)..=u32::from(hi)))
            .map(|c| char::from_u32(c).expect("ASCII class"))
            .collect()
    }
}

fn parse_simple_class(pattern: &str) -> Option<(char, char, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
    if dash != '-' || chars.next().is_some() {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min_len, max_len) = counts.split_once(',')?;
    Some((lo, hi, min_len.parse().ok()?, max_len.parse().ok()?))
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain generator behind [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty => $via:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen::<$via>() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8 => u32, u16 => u32, u32 => u32, u64 => u64, usize => u64,
                    i8 => u32, i16 => u32, i32 => u32, i64 => u64, isize => u64);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.0.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// The canonical whole-domain strategy for `T` (e.g. `any::<u64>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specifications accepted by [`vec`]: an exact `usize` or a
    //  (inclusive/exclusive) range of lengths.
    pub trait IntoLenRange {
        /// Lower and inclusive upper bound on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length falls in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (min_len, max_len) = len.bounds();
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.min_len..=self.max_len);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`proptest::option::of`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Generates `None` a quarter of the time, `Some(inner)` otherwise
    /// (matching real proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.0.gen::<f64>() < 0.25 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod array {
    //! Fixed-size array strategies (`proptest::array::uniform3`).

    use super::{Strategy, TestRng};

    /// Generates `[T; 3]` with independent draws from `element`.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3 { element }
    }

    /// See [`uniform3`].
    #[derive(Debug, Clone)]
    pub struct Uniform3<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [
                self.element.generate(rng),
                self.element.generate(rng),
                self.element.generate(rng),
            ]
        }
    }
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Skips the current case (without failing) when its inputs do not
/// satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Asserts equality inside a property, with optional extra context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` (the attribute is written inside the macro body,
/// as with real proptest) that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let __outcome: $crate::TestCaseResult = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => panic!(
                        "property {} failed on generated case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __msg
                    ),
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -5i32..=5, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.5..2.0).contains(&f), "f out of range: {f}");
        }

        #[test]
        fn vec_and_option_strategies_compose(
            xs in crate::collection::vec(crate::option::of(0u64..4), 0..20),
            s in "[a-c]{2,5}",
            w in crate::array::uniform3(-1.0f64..1.0),
        ) {
            prop_assert!(xs.len() < 20);
            prop_assert!(xs.iter().flatten().all(|&v| v < 4));
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(w.iter().all(|v| (-1.0..1.0).contains(v)));
        }

        #[test]
        fn prop_map_transforms(n in (0u32..5).prop_map(|v| v * 2)) {
            prop_assert!(n % 2 == 0 && n < 10);
            prop_assert_eq!(n % 2, 0, "context {}", n);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        use crate::Strategy;
        let s = 0u64..1_000_000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
