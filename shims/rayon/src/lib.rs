//! In-repo stand-in for `rayon` (see `shims/README.md`).
//!
//! Supports the one pattern this workspace uses:
//! `data.par_iter().map(f).collect()`. The implementation splits the
//! input slice into contiguous chunks, maps each chunk on a scoped OS
//! thread, and reassembles results in input order — so `collect`
//! observes exactly the sequential ordering, as with real rayon's
//! indexed parallel iterators. On a single-core host it degrades to a
//! plain sequential map with no thread overhead.

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelRefIterator, ParMap, ParSliceIter};
}

/// Types whose references can be iterated in parallel (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed parallel iterator.
    type Iter;
    /// Borrows a parallel iterator over the collection.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = ParSliceIter<'data, T>;
    fn par_iter(&'data self) -> ParSliceIter<'data, T> {
        ParSliceIter { data: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = ParSliceIter<'data, T>;
    fn par_iter(&'data self) -> ParSliceIter<'data, T> {
        ParSliceIter { data: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParSliceIter<'data, T> {
    data: &'data [T],
}

impl<'data, T: Sync> ParSliceIter<'data, T> {
    /// Maps every element through `op` (executed across threads).
    pub fn map<U, F>(self, op: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> U + Sync,
        U: Send,
    {
        ParMap {
            data: self.data,
            op,
        }
    }
}

/// The result of [`ParSliceIter::map`], ready to collect.
pub struct ParMap<'data, T, F> {
    data: &'data [T],
    op: F,
}

impl<'data, T: Sync, F> ParMap<'data, T, F> {
    /// Runs the map and gathers results in input order.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(&'data T) -> U + Sync,
        U: Send,
        C: FromIterator<U>,
    {
        run_ordered(self.data, &self.op).into_iter().collect()
    }
}

/// Maps `op` over `data` on up to `available_parallelism` threads,
/// returning results in input order.
fn run_ordered<'data, T: Sync, U: Send, F>(data: &'data [T], op: &F) -> Vec<U>
where
    F: Fn(&'data T) -> U + Sync,
{
    let threads = max_threads().min(data.len());
    if threads <= 1 {
        return data.iter().map(op).collect();
    }
    let chunk_len = data.len().div_ceil(threads);
    let mut chunks: Vec<Vec<U>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = data
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter().map(op).collect::<Vec<U>>()))
            .collect();
        chunks = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
    });
    chunks.into_iter().flatten().collect()
}

fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_collects_empty() {
        let xs: Vec<u32> = Vec::new();
        let ys: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }
}
