//! In-repo stand-in for `serde_derive` (see `shims/README.md`).
//!
//! Generates `serde::Serialize::to_value` / `serde::Deserialize::from_value`
//! impls by hand-parsing the item's token stream — no `syn`/`quote`
//! available in this offline environment. Supported shapes are exactly
//! those used in this workspace:
//!
//! * structs with named fields,
//! * tuple structs of any arity (including single private fields),
//! * enums whose variants are unit or carry tuple payloads.
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported
//! and produce a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

/// The shapes this shim can derive for.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    /// Variant name plus tuple-payload arity (0 = unit variant).
    Enum(Vec<(String, usize)>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let mut keyword = None;
    // Skip attributes, doc comments and visibility until `struct`/`enum`.
    while let Some(tok) = tokens.next() {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // `#[...]` — consume the bracket group.
                let _ = tokens.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    keyword = Some(s);
                    break;
                }
                // `pub` possibly followed by `(crate)` etc.
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = tokens.next();
                        }
                    }
                }
            }
            _ => {}
        }
    }
    let keyword = keyword.expect("derive input contains `struct` or `enum`");
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name after `{keyword}`, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generics (item `{name}`)");
        }
    }
    let body = tokens.find_map(|tok| match tok {
        TokenTree::Group(g) if g.delimiter() != Delimiter::Bracket => Some(g),
        _ => None,
    });
    let shape = match (keyword.as_str(), body) {
        ("struct", None) => Shape::TupleStruct(0),
        ("struct", Some(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_fields(g.stream()))
        }
        ("struct", Some(g)) => Shape::NamedStruct(named_fields(g.stream())),
        ("enum", Some(g)) => Shape::Enum(enum_variants(g.stream(), &name)),
        ("enum", None) => panic!("enum `{name}` has no body"),
        _ => unreachable!(),
    };
    Item { name, shape }
}

/// Splits a token stream on top-level commas. Groups are atomic token
/// trees, but generic angle brackets are not — `BTreeMap<JobId, u32>`
/// exposes its comma — so `<`/`>` nesting is tracked explicitly.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                segments.push(Vec::new());
                continue;
            }
            _ => {}
        }
        segments.last_mut().expect("non-empty").push(tok);
    }
    segments.retain(|seg| !seg.is_empty());
    segments
}

fn count_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// Field names of a named-field body: per comma segment, the first
/// identifier after attributes and visibility.
fn named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|segment| {
            let mut toks = segment.into_iter().peekable();
            loop {
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                        let _ = toks.next();
                    }
                    Some(TokenTree::Ident(id)) => {
                        let s = id.to_string();
                        if s == "pub" {
                            if let Some(TokenTree::Group(g)) = toks.peek() {
                                if g.delimiter() == Delimiter::Parenthesis {
                                    let _ = toks.next();
                                }
                            }
                            continue;
                        }
                        return s;
                    }
                    other => panic!("cannot find field name in struct body: {other:?}"),
                }
            }
        })
        .collect()
}

fn enum_variants(stream: TokenStream, enum_name: &str) -> Vec<(String, usize)> {
    split_top_level(stream)
        .into_iter()
        .map(|segment| {
            let mut name = None;
            let mut arity = 0usize;
            let mut toks = segment.into_iter().peekable();
            while let Some(tok) = toks.next() {
                match tok {
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        let _ = toks.next();
                    }
                    TokenTree::Ident(id) => {
                        name = Some(id.to_string());
                        match toks.next() {
                            None => {}
                            Some(TokenTree::Group(g))
                                if g.delimiter() == Delimiter::Parenthesis =>
                            {
                                arity = count_fields(g.stream());
                            }
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                                panic!(
                                    "serde shim derive does not support struct-like \
                                     enum variants (`{enum_name}`)"
                                );
                            }
                            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                                // Explicit discriminant — consume the rest.
                                for _ in toks.by_ref() {}
                            }
                            other => panic!("unexpected token after variant name: {other:?}"),
                        }
                        break;
                    }
                    other => panic!("unexpected token in enum body: {other:?}"),
                }
            }
            (name.expect("variant has a name"), arity)
        })
        .collect()
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Shape::TupleStruct(0) => format!("::serde::Value::Str(\"{name}\".into())"),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Shape::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|(variant, arity)| match arity {
                    0 => format!(
                        "{name}::{variant} => \
                         ::serde::Value::Str(::std::string::String::from(\"{variant}\")),"
                    ),
                    1 => format!(
                        "{name}::{variant}(__f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{variant}\"), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    n => {
                        let binders = (0..*n)
                            .map(|i| format!("__f{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "{name}::{variant}({binders}) => ::serde::Value::Object(\
                             ::std::vec![(::std::string::String::from(\"{variant}\"), \
                             ::serde::Value::Array(::std::vec![{items}]))]),"
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let bindings = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::field(__obj, \"{f}\")?)?,"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "let __obj = __value.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{bindings}\n}})"
            )
        }
        Shape::TupleStruct(0) => format!("::std::result::Result::Ok({name})"),
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(\
             ::serde::Deserialize::from_value(__value)?))"
        ),
        Shape::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let __arr = __value.as_array().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::custom(\"wrong tuple arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Shape::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(variant, _)| {
                    format!("\"{variant}\" => return ::std::result::Result::Ok({name}::{variant}),")
                })
                .collect::<Vec<_>>()
                .join("\n");
            let payload_arms = variants
                .iter()
                .filter(|(_, arity)| *arity > 0)
                .map(|(variant, arity)| {
                    if *arity == 1 {
                        format!(
                            "\"{variant}\" => return ::std::result::Result::Ok(\
                             {name}::{variant}(::serde::Deserialize::from_value(__payload)?)),"
                        )
                    } else {
                        let items = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "\"{variant}\" => {{\n\
                             let __arr = __payload.as_array().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected array payload\"))?;\n\
                             if __arr.len() != {arity} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::custom(\"wrong payload arity\")); }}\n\
                             return ::std::result::Result::Ok({name}::{variant}({items}));\n}}"
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "if let ::serde::Value::Str(__s) = __value {{\n\
                 match __s.as_str() {{\n{unit_arms}\n_ => {{}}\n}}\n}}\n\
                 if let ::std::option::Option::Some(__obj) = __value.as_object() {{\n\
                 if __obj.len() == 1 {{\n\
                 let (__tag, __payload) = &__obj[0];\n\
                 match __tag.as_str() {{\n{payload_arms}\n_ => {{}}\n}}\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"invalid value for {name}: {{}}\", __value.kind())))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
