//! Cross-crate integration tests: full simulations of Table 2 traces under
//! every scheduler, checking lifecycle invariants that no single crate can
//! verify alone.

use ones_repro::cluster::ClusterSpec;
use ones_repro::dlperf::PerfModel;
use ones_repro::simcore::{DetRng, SimTime};
use ones_repro::simulator::{SchedulerKind, SimConfig, SimResult, Simulation};
use ones_repro::workload::{Trace, TraceConfig};

fn run(kind: SchedulerKind, jobs: usize, gpus: u32, seed: u64) -> SimResult {
    let trace = Trace::generate(TraceConfig {
        num_jobs: jobs,
        arrival_rate: 1.0 / 20.0,
        seed,
        kill_fraction: 0.0,
    });
    let spec = ClusterSpec::longhorn_subset(gpus);
    let scheduler = kind.build(&spec, &trace, &DetRng::seed(99));
    Simulation::new(
        PerfModel::new(spec),
        &trace,
        scheduler,
        SimConfig {
            record_trace: true,
            ..SimConfig::default()
        },
    )
    .run()
}

const ALL: [SchedulerKind; 8] = [
    SchedulerKind::Ones,
    SchedulerKind::Drl,
    SchedulerKind::Tiresias,
    SchedulerKind::Optimus,
    SchedulerKind::Fifo,
    SchedulerKind::SrtfOracle,
    SchedulerKind::Gandiva,
    SchedulerKind::Slaq,
];

#[test]
fn every_scheduler_completes_every_job() {
    for kind in ALL {
        let r = run(kind, 8, 16, 3);
        assert!(r.all_completed, "{kind:?} left jobs incomplete");
        assert_eq!(r.jobs.len(), 8);
        for job in r.jobs.values() {
            assert!(job.is_completed(), "{kind:?}: {} incomplete", job.spec.name);
        }
    }
}

#[test]
fn lifecycle_causality_invariants() {
    for kind in ALL {
        let r = run(kind, 8, 16, 5);
        let horizon = SimTime::from_secs(r.makespan);
        for job in r.jobs.values() {
            let name = &job.spec.name;
            let arrival = job.arrival;
            let start = job.first_start.expect("completed jobs started");
            let done = job.completion.expect("completed");
            assert!(arrival <= start, "{kind:?}/{name}: started before arrival");
            assert!(start <= done, "{kind:?}/{name}: finished before starting");
            let jct = job.jct().unwrap();
            let q = job.queueing_time(horizon);
            assert!(
                (q + job.exec_time - jct).abs() < 1e-6,
                "{kind:?}/{name}: queue {q} + exec {} != jct {jct}",
                job.exec_time
            );
            assert!(job.exec_time > 0.0, "{kind:?}/{name}: zero execution time");
            assert!(job.epochs_done > 0, "{kind:?}/{name}: zero epochs");
            assert!(
                job.current_accuracy >= job.spec.convergence.target_accuracy - 1e-9,
                "{kind:?}/{name}: completed below target accuracy"
            );
        }
    }
}

#[test]
fn gpu_capacity_never_exceeded() {
    // Reconstruct concurrent GPU usage from the trace log: at any instant,
    // the sum of running jobs' GPUs must fit the cluster. We check at each
    // deployment via the recorded per-deployment summary.
    let r = run(SchedulerKind::Ones, 8, 16, 7);
    for ev in r.trace_log.of_kind("sched") {
        // detail looks like "deploy job0:B256xC2 job3:B128xC1 ..."
        let total: u32 = ev
            .detail
            .split_whitespace()
            .filter_map(|tok| {
                tok.rsplit_once("xC")
                    .and_then(|(_, c)| c.parse::<u32>().ok())
            })
            .sum();
        assert!(
            total <= 16,
            "deployment uses {total} GPUs on a 16-GPU cluster"
        );
    }
}

#[test]
fn simulations_are_deterministic() {
    for kind in [
        SchedulerKind::Ones,
        SchedulerKind::Drl,
        SchedulerKind::Tiresias,
    ] {
        let a = run(kind, 6, 16, 11);
        let b = run(kind, 6, 16, 11);
        assert_eq!(a.makespan, b.makespan, "{kind:?} not deterministic");
        let jct =
            |r: &SimResult| -> Vec<f64> { r.jobs.values().map(|j| j.jct().unwrap()).collect() };
        assert_eq!(jct(&a), jct(&b), "{kind:?} JCTs differ across runs");
    }
}

#[test]
fn different_seeds_give_different_workloads_same_invariants() {
    for seed in [1u64, 2, 3] {
        let r = run(SchedulerKind::Fifo, 6, 16, seed);
        assert!(r.all_completed);
        assert!(r.makespan > 0.0);
    }
}

#[test]
fn ones_scales_batches_above_submission() {
    // On an idle-ish cluster ONES must actually use its elasticity: at
    // least one deployment should give some job a batch beyond B0.
    let r = run(SchedulerKind::Ones, 4, 16, 13);
    let mut saw_elastic = false;
    for ev in r.trace_log.of_kind("sched") {
        for tok in ev.detail.split_whitespace() {
            if let Some((b_part, _)) = tok.rsplit_once("xC") {
                if let Some((_, b)) = b_part.split_once(":B") {
                    if b.parse::<u32>().unwrap_or(0) > 256 {
                        saw_elastic = true;
                    }
                }
            }
        }
    }
    assert!(
        saw_elastic,
        "ONES never grew any batch beyond the submitted sizes"
    );
}

#[test]
fn fixed_batch_schedulers_never_change_batches() {
    for kind in [
        SchedulerKind::Tiresias,
        SchedulerKind::Fifo,
        SchedulerKind::Drl,
    ] {
        let r = run(kind, 6, 16, 17);
        for ev in r.trace_log.of_kind("sched") {
            for tok in ev.detail.split_whitespace() {
                let Some((b_part, _)) = tok.rsplit_once("xC") else {
                    continue;
                };
                let Some((job_part, b)) = b_part.split_once(":B") else {
                    continue;
                };
                let job_id: u64 = job_part
                    .strip_prefix("job")
                    .and_then(|s| s.parse().ok())
                    .expect("job token");
                let batch: u32 = b.parse().expect("batch token");
                let submitted = r.jobs[&ones_repro::workload::JobId(job_id)]
                    .spec
                    .submit_batch;
                assert_eq!(
                    batch, submitted,
                    "{kind:?} changed job{job_id}'s batch ({submitted} -> {batch})"
                );
            }
        }
    }
}

#[test]
fn elastic_overhead_is_an_order_cheaper_per_transition() {
    let ones = run(SchedulerKind::Ones, 8, 16, 19);
    let tiresias = run(SchedulerKind::Tiresias, 8, 16, 19);
    let per = |r: &SimResult| r.total_overhead / r.transitions.max(1) as f64;
    assert!(
        per(&ones) * 5.0 < per(&tiresias),
        "elastic {:.2}s/transition vs checkpoint {:.2}s/transition",
        per(&ones),
        per(&tiresias)
    );
}

#[test]
fn abnormal_endings_are_survived_by_every_scheduler() {
    // §2.1: some jobs are killed or crash. Schedulers and the ONES
    // predictor must survive partial, abnormal job histories.
    for kind in [
        SchedulerKind::Ones,
        SchedulerKind::Tiresias,
        SchedulerKind::Drl,
    ] {
        let trace = Trace::generate(TraceConfig {
            num_jobs: 10,
            arrival_rate: 1.0 / 15.0,
            seed: 23,
            kill_fraction: 0.4,
        });
        let killed_in_trace = trace
            .jobs
            .iter()
            .filter(|j| j.kill_after_secs.is_some())
            .count();
        assert!(killed_in_trace > 0, "kill fraction produced no kills");
        let spec = ClusterSpec::longhorn_subset(16);
        let scheduler = kind.build(&spec, &trace, &DetRng::seed(99));
        let r = Simulation::new(
            PerfModel::new(spec),
            &trace,
            scheduler,
            SimConfig::default(),
        )
        .run();
        assert!(r.all_completed, "{kind:?} wedged on a killed-job trace");
        let killed = r.jobs.values().filter(|j| j.killed).count();
        // Some marked jobs may legitimately converge before their kill
        // time; at least one kill should land with this seed.
        assert!(killed >= 1, "{kind:?}: no kill landed");
        for job in r.jobs.values() {
            assert!(job.is_completed());
            if job.killed {
                assert!(
                    job.current_accuracy < job.spec.convergence.max_accuracy,
                    "killed job reported final accuracy"
                );
            }
        }
    }
}

#[test]
fn killed_jobs_release_their_gpus() {
    let trace = Trace::generate(TraceConfig {
        num_jobs: 8,
        arrival_rate: 1.0 / 15.0,
        seed: 31,
        kill_fraction: 0.5,
    });
    let spec = ClusterSpec::longhorn_subset(16);
    let scheduler = SchedulerKind::Fifo.build(&spec, &trace, &DetRng::seed(1));
    let r = Simulation::new(
        PerfModel::new(spec),
        &trace,
        scheduler,
        SimConfig {
            record_trace: true,
            ..SimConfig::default()
        },
    )
    .run();
    assert!(r.all_completed);
    // Every kill in the log must be followed by other jobs still making
    // progress (the cluster is not wedged on phantom allocations).
    let kills = r
        .trace_log
        .of_kind("job")
        .filter(|e| e.detail == "killed")
        .count();
    assert!(kills >= 1);
}
