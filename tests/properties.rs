//! Property-based integration tests (proptest): invariants of the schedule
//! encoding, the evolution operations, the performance models and the
//! statistics that must hold for *arbitrary* inputs, not just the fixtures
//! unit tests use.

use ones_repro::cluster::{ClusterSpec, GpuId, Placement};
use ones_repro::dlperf::{ConvergenceModel, ConvergenceState, DatasetKind, ModelKind, PerfModel};
use ones_repro::schedcore::Schedule;
use ones_repro::simcore::DetRng;
use ones_repro::stats::{ecdf, Beta, Summary};
use ones_repro::workload::{Trace, TraceConfig};
use proptest::prelude::*;

/// Strategy: an arbitrary schedule on an `n`-GPU cluster with jobs 0..j.
fn schedule_strategy(gpus: u32, jobs: u64) -> impl Strategy<Value = Schedule> {
    proptest::collection::vec(
        proptest::option::of((0..jobs, 1u32..=512u32)),
        gpus as usize,
    )
    .prop_map(move |slots| {
        let mut s = Schedule::empty(gpus);
        for (i, slot) in slots.into_iter().enumerate() {
            if let Some((job, batch)) = slot {
                s.assign(GpuId(i as u32), ones_repro::workload::JobId(job), batch);
            }
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq 2 invariants: for every job, B_j = Σ local batches and
    /// c_j = |placement|; summed over jobs, GPU counts never exceed the
    /// cluster.
    #[test]
    fn schedule_derivations_consistent(s in schedule_strategy(16, 6)) {
        let mut total_gpus = 0;
        for (job, (batch, gpus)) in s.running_jobs() {
            prop_assert_eq!(s.global_batch(job), batch);
            prop_assert_eq!(s.gpu_count(job), gpus);
            prop_assert_eq!(s.placement(job).len() as u32, gpus);
            prop_assert_eq!(s.local_batches(job).iter().sum::<u32>(), batch);
            total_gpus += gpus;
        }
        prop_assert!(total_gpus + s.idle_count() == 16);
    }

    /// Reorder preserves every job's global batch and GPU count and packs
    /// each job's workers into one contiguous GPU-id range (Figure 10's
    /// guarantee; contiguity minimises ring crossings per node).
    #[test]
    fn reorder_preserves_configs_and_packs_contiguously(s in schedule_strategy(16, 6)) {
        let r = s.reordered();
        let r_jobs = r.running_jobs();
        for (job, cfg) in s.running_jobs() {
            prop_assert_eq!(r_jobs.get(&job), Some(&cfg));
            let gpus = r.placement(job);
            let ids = gpus.gpus();
            for w in ids.windows(2) {
                prop_assert_eq!(w[1].0, w[0].0 + 1, "{} not contiguous", job);
            }
        }
        prop_assert_eq!(r.idle_count(), s.idle_count());
    }

    /// Alignment never changes any job's configuration (batch multiset),
    /// and jobs unchanged between deployed and candidate stay put.
    #[test]
    fn alignment_is_config_preserving(
        deployed in schedule_strategy(16, 6),
        candidate in schedule_strategy(16, 6),
    ) {
        let aligned = candidate.aligned_with(&deployed);
        let aligned_jobs = aligned.running_jobs();
        for (job, cfg) in candidate.running_jobs() {
            prop_assert_eq!(aligned_jobs.get(&job), Some(&cfg), "{}", job);
            let mut old: Vec<u32> = deployed.local_batches(job);
            let mut new: Vec<u32> = candidate.local_batches(job);
            old.sort_unstable();
            new.sort_unstable();
            if !old.is_empty() && old == new {
                prop_assert_eq!(aligned.placement(job), deployed.placement(job));
            }
        }
    }

    /// The all-reduce cost model is monotone in message size and never
    /// cheaper across nodes than within one.
    #[test]
    fn allreduce_monotonicity(
        workers in 2u32..=16,
        mb in 1.0f64..500.0,
    ) {
        let spec = ClusterSpec::new(4, 4);
        let packed = Placement::contiguous(0, workers);
        let small = ones_repro::cluster::allreduce_time(&spec, &packed, mb * 1e6);
        let large = ones_repro::cluster::allreduce_time(&spec, &packed, 2.0 * mb * 1e6);
        prop_assert!(large > small);
        // Scatter the same worker count across nodes: never faster.
        let scattered: Placement = (0..workers).map(|i| GpuId((i * 16 / workers) % 16)).collect();
        if scattered.len() == packed.len() && scattered.nodes_spanned(&spec) > packed.nodes_spanned(&spec) {
            let t_scat = ones_repro::cluster::allreduce_time(&spec, &scattered, mb * 1e6);
            prop_assert!(t_scat >= small - 1e-12);
        }
    }

    /// Step time is monotone in the local batch, and throughput stays
    /// positive and finite for every legal configuration.
    #[test]
    fn step_time_monotone_in_batch(
        b1 in 1u32..=128,
        b2 in 129u32..=256,
        workers in 1u32..=8,
    ) {
        let perf = PerfModel::new(ClusterSpec::longhorn());
        let profile = ModelKind::ResNet50.profile();
        let p = Placement::contiguous(0, workers);
        let t1 = perf.step_time(&profile, &vec![b1; workers as usize], &p);
        let t2 = perf.step_time(&profile, &vec![b2; workers as usize], &p);
        prop_assert!(t2 > t1);
        let x = perf.throughput(&profile, &vec![b2; workers as usize], &p);
        prop_assert!(x.is_finite() && x > 0.0);
    }

    /// Convergence progress only ever decreases by exactly the documented
    /// abrupt-scaling penalty (Figure 13), epochs always add progress, and
    /// the completion fraction stays in (0, 1].
    #[test]
    fn convergence_progress_accounting(
        batches in proptest::collection::vec(6u32..=13, 1..60),
    ) {
        let model = ConvergenceModel::example();
        let mut s = ConvergenceState::new(model);
        let mut prev = 0.0;
        for exp in batches {
            let b = 1u32 << exp; // 64..=8192
            let destroyed = s.on_batch_change(b);
            prop_assert!(destroyed >= 0.0);
            prop_assert!(
                s.progress() >= prev - destroyed - 1e-9,
                "progress lost more than the penalty: {} -> {} (penalty {destroyed})",
                prev, s.progress()
            );
            let before_epoch = s.progress();
            s.advance_epoch(b, true);
            prop_assert!(s.progress() > before_epoch, "epoch added no progress");
            prev = s.progress();
            let f = s.completion_fraction();
            prop_assert!(f > 0.0 && f <= 1.0);
        }
    }

    /// Efficiency never exceeds 1 above the reference batch and never
    /// rewards removing LR scaling.
    #[test]
    fn efficiency_bounds(batch_exp in 5u32..=14) {
        let model = ConvergenceModel::example();
        let b = 1u32 << batch_exp;
        let scaled = model.efficiency(b, true);
        let unscaled = model.efficiency(b, false);
        prop_assert!(scaled <= 1.0 + 1e-12);
        prop_assert!(unscaled <= scaled + 1e-12);
        prop_assert!(scaled > 0.0 && unscaled > 0.0);
    }

    /// Beta samples always land in (0, 1) and their empirical mean tracks
    /// α/(α+β).
    #[test]
    fn beta_sampling_bounds(alpha in 1.0f64..50.0, beta in 1.0f64..50.0) {
        let d = Beta::new(alpha, beta);
        let mut rng = DetRng::seed(42);
        let n = 2000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            prop_assert!(x > 0.0 && x < 1.0);
            sum += x;
        }
        let mean = sum / f64::from(n);
        prop_assert!((mean - d.mean()).abs() < 0.05, "mean {mean} vs {}", d.mean());
    }

    /// Summary statistics are internally ordered for any sample.
    #[test]
    fn summary_ordering(xs in proptest::collection::vec(0.0f64..1e6, 2..200)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    /// Empirical CDFs are monotone, end at 1, and x-values are strictly
    /// increasing.
    #[test]
    fn ecdf_properties(xs in proptest::collection::vec(0.0f64..1e4, 1..100)) {
        let curve = ecdf(&xs);
        prop_assert!(!curve.is_empty());
        prop_assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in curve.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 < w[1].1);
        }
    }

    /// Trace generation always yields valid, arrival-sorted jobs for any
    /// seed and plausible size.
    #[test]
    fn trace_generation_valid(seed in 0u64..1000, jobs in 1usize..60) {
        let t = Trace::generate(TraceConfig {
            num_jobs: jobs,
            arrival_rate: 1.0 / 30.0,
            seed,
            kill_fraction: 0.0,
        });
        prop_assert_eq!(t.len(), jobs);
        for j in &t.jobs {
            j.validate();
        }
        for w in t.jobs.windows(2) {
            prop_assert!(w[0].arrival_secs <= w[1].arrival_secs);
        }
    }

    /// Dataset profiles keep every model's local batch capacity positive
    /// and compute time finite.
    #[test]
    fn profile_dataset_combinations(model_idx in 0usize..7, ds_idx in 0usize..5) {
        let model = ModelKind::ALL[model_idx];
        let dataset = [
            DatasetKind::ImageNet,
            DatasetKind::Cifar10,
            DatasetKind::Cola,
            DatasetKind::Mrpc,
            DatasetKind::Sst2,
        ][ds_idx];
        let p = model.profile().for_dataset(dataset);
        prop_assert!(p.max_local_batch >= 32);
        let t = p.compute_time(p.max_local_batch);
        prop_assert!(t.is_finite() && t > 0.0);
    }
}
