//! Integration tests that pin the paper's qualitative claims — the shapes
//! the reproduction must preserve (see EXPERIMENTS.md for quantitative
//! paper-vs-measured records).

use ones_repro::cluster::{ClusterSpec, Placement};
use ones_repro::dlperf::{ConvergenceModel, ConvergenceState, DatasetKind, ModelKind, PerfModel};
use ones_repro::ones::ScalingCostModel;
use ones_repro::simulator::{run_experiment, ExperimentConfig, SchedulerKind, TraceSource};
use ones_repro::workload::TraceConfig;

fn experiment_at_rate(
    scheduler: SchedulerKind,
    jobs: usize,
    gpus: u32,
    rate_secs: f64,
) -> ExperimentConfig {
    ExperimentConfig {
        gpus,
        source: TraceSource::Table2(TraceConfig {
            num_jobs: jobs,
            arrival_rate: 1.0 / rate_secs,
            seed: 42,
            kill_fraction: 0.0,
        }),
        scheduler,
        sched_seed: 1,
        drl_pretrain_episodes: 1,
    }
}

fn experiment(scheduler: SchedulerKind, jobs: usize, gpus: u32) -> ExperimentConfig {
    experiment_at_rate(scheduler, jobs, gpus, 30.0)
}

/// §4.2 / Figure 15a: ONES achieves the smallest average JCT of all four
/// schedulers on a contended cluster.
#[test]
fn ones_wins_average_jct() {
    let ones = run_experiment(experiment(SchedulerKind::Ones, 25, 32));
    for kind in [
        SchedulerKind::Drl,
        SchedulerKind::Tiresias,
        SchedulerKind::Optimus,
    ] {
        let base = run_experiment(experiment(kind, 25, 32));
        assert!(
            ones.metrics.mean_jct() < base.metrics.mean_jct(),
            "ONES {:.1}s not below {} {:.1}s",
            ones.metrics.mean_jct(),
            kind.name(),
            base.metrics.mean_jct()
        );
    }
}

/// §4.2 "Waiting less": ONES's average queueing time beats the periodic
/// scheduler (Optimus waits out its 10-minute rounds) and the
/// no-preemption DRL.
#[test]
fn ones_queues_less_than_periodic_and_nonpreemptive() {
    let ones = run_experiment(experiment(SchedulerKind::Ones, 25, 32));
    for kind in [SchedulerKind::Optimus, SchedulerKind::Drl] {
        let base = run_experiment(experiment(kind, 25, 32));
        assert!(
            ones.metrics.mean_queue() < base.metrics.mean_queue(),
            "ONES queue {:.1}s not below {} {:.1}s",
            ones.metrics.mean_queue(),
            kind.name(),
            base.metrics.mean_queue()
        );
    }
}

/// Figure 2: with a fixed global batch, throughput saturates and drops
/// past the node boundary; with an elastic batch it keeps rising.
#[test]
fn figure2_shape() {
    let perf = PerfModel::new(ClusterSpec::longhorn());
    let profile = ModelKind::ResNet50
        .profile()
        .for_dataset(DatasetKind::Cifar10);
    let x = |b: u32, c: u32| {
        let p = Placement::contiguous(0, c);
        let batches = PerfModel::split_batch(&profile, b, &p).expect("fits");
        perf.throughput(&profile, &batches, &p)
    };
    assert!(x(256, 8) < x(256, 4), "fixed batch must drop past the peak");
    assert!(x(2048, 8) > x(1024, 4), "elastic batch must keep scaling");
    assert!(
        x(2048, 8) > 2.0 * x(256, 8),
        "elastic beats fixed at 8 workers"
    );
}

/// Figure 3: fixed local batch × more GPUs without LR scaling converges
/// strictly slower per epoch.
#[test]
fn figure3_shape() {
    let model = ConvergenceModel {
        reference_batch: 256,
        noise_scale: 4096.0,
        ..ConvergenceModel::example()
    };
    let acc_after = |gpus: u32, epochs: u32| {
        let mut s = ConvergenceState::new(model);
        for _ in 0..epochs {
            s.advance_epoch(256 * gpus, false);
        }
        s.accuracy()
    };
    let a1 = acc_after(1, 30);
    let a2 = acc_after(2, 30);
    let a4 = acc_after(4, 30);
    let a8 = acc_after(8, 30);
    assert!(a1 > a2 && a2 > a4 && a4 > a8, "{a1} {a2} {a4} {a8}");
    // "especially when the number of GPUs is greater than 2":
    assert!(a1 - a2 < a2 - a8);
}

/// Figures 13/14: an abrupt batch jump spikes the loss; gradual doubling
/// does not.
#[test]
fn figure13_14_shape() {
    let model = ConvergenceModel {
        reference_batch: 256,
        noise_scale: 4096.0,
        ..ConvergenceModel::example()
    };
    let mut abrupt = ConvergenceState::new(model);
    let mut gradual = ConvergenceState::new(model);
    for _ in 0..30 {
        abrupt.advance_epoch(256, true);
        gradual.advance_epoch(256, true);
    }
    let before = abrupt.loss();
    assert!(abrupt.on_batch_change(4096) > 0.0);
    assert!(abrupt.loss() > before * 1.2, "no visible spike");
    for b in [512, 1024, 2048, 4096] {
        assert_eq!(gradual.on_batch_change(b), 0.0, "doubling must be free");
    }
    assert!((gradual.loss() - before).abs() < 1e-9);
}

/// Figure 16: elastic scaling ≈ 1 s, checkpoint migration ≥ ~14 s, for
/// every model family.
#[test]
fn figure16_shape() {
    let cost = ScalingCostModel::default();
    let ar = ones_repro::cluster::AllReduceModel::new(ClusterSpec::longhorn());
    let p = Placement::contiguous(0, 4);
    for kind in ModelKind::ALL {
        let profile = kind.profile();
        let elastic = cost.elastic_cost(&profile, &ar, &p, true);
        let ckpt = cost.checkpoint_cost(&profile);
        assert!(elastic < 3.0, "{kind}: elastic {elastic}");
        assert!(ckpt > 10.0 * elastic, "{kind}: gap too small");
    }
}

/// Figure 17: more GPUs reduce ONES's average JCT.
#[test]
fn figure17_shape() {
    let small = run_experiment(experiment(SchedulerKind::Ones, 25, 16));
    let large = run_experiment(experiment(SchedulerKind::Ones, 25, 64));
    assert!(
        large.metrics.mean_jct() < small.metrics.mean_jct(),
        "64 GPUs ({:.1}s) must beat 16 GPUs ({:.1}s)",
        large.metrics.mean_jct(),
        small.metrics.mean_jct()
    );
}

/// Table 4: per-job JCTs of ONES vs a baseline differ significantly, with
/// ONES smaller (one-sided negative test accepts near 1 under the paper's
/// convention).
#[test]
fn table4_shape() {
    use ones_repro::stats::{signed_rank_test, Alternative};
    // DRL vs ONES separates most clearly at this scale (the full Table 4
    // at 120 jobs / 64 GPUs is regenerated by the `table4_significance`
    // bench binary).
    let ones = run_experiment(experiment_at_rate(SchedulerKind::Ones, 40, 32, 20.0));
    let drl = run_experiment(experiment_at_rate(SchedulerKind::Drl, 40, 32, 20.0));
    let two = signed_rank_test(&ones.metrics.jct, &drl.metrics.jct, Alternative::TwoSided);
    let neg = signed_rank_test(&ones.metrics.jct, &drl.metrics.jct, Alternative::Greater);
    assert!(two.p_value < 0.05, "two-sided p = {}", two.p_value);
    assert!(neg.p_value > 0.95, "one-sided negative p = {}", neg.p_value);
}
